(* Engine scaling benchmark: cold/warm proof-cache wall-times and
   jobs-vs-speedup points for the obligation pool, emitted as
   BENCH_engine.json (consumed by CI as an artifact; see
   EXPERIMENTS.md).  The DAG comes from Plan.build, so the measured
   obligations include the static-analysis phase (one dependency-free
   lint obligation per function) alongside the proof phases.

   Run with: dune exec bench/engine_bench.exe -- [--quick] [--out FILE] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out = ref "BENCH_engine.json" in
  Array.iteri
    (fun i a -> if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let seed = 2024 in
  let layout = Layout.default Geometry.tiny in
  let plan, build_s = time (fun () -> Engine.Plan.build ~quick ~seed layout) in
  let dag = plan.Engine.Plan.dag in

  (* jobs scaling, no cache: every obligation executes.  Best of two
     runs per point — the gate in scripts/ci.sh compares these walls,
     so a single scheduler hiccup must not fail CI. *)
  let jobs_points =
    List.map
      (fun jobs ->
        let execs, wall1 = time (fun () -> Engine.Pool.run ~jobs dag) in
        let _, wall2 = time (fun () -> Engine.Pool.run ~jobs dag) in
        (jobs, Float.min wall1 wall2, execs))
      [ 1; 2; 4 ]
  in
  let serial, serial_execs =
    let _, w, e = List.find (fun (j, _, _) -> j = 1) jobs_points in
    (w, e)
  in
  (* per-phase busy time on the serial run: where the wall goes *)
  let phase_walls =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (e : Engine.Pool.exec) ->
        let p = e.obligation.Engine.Obligation.phase in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl p) in
        Hashtbl.replace tbl p (prev +. (e.finished -. e.started)))
      serial_execs;
    Hashtbl.fold (fun p w acc -> (p, w) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in

  (* proof cache: cold run populates, warm run replays *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-engine-bench-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let cache = Engine.Cache.create ~dir in
  let cold_execs, cold = time (fun () -> Engine.Pool.run ~cache ~jobs:1 dag) in
  let warm_execs, warm = time (fun () -> Engine.Pool.run ~cache ~jobs:1 dag) in
  let hits execs =
    List.length (List.filter (fun (e : Engine.Pool.exec) -> e.cache = Engine.Pool.Hit) execs)
  in
  rm_rf dir;

  (* override composition: cold code-proof wall with same-layer callees
     stubbed by their contracts vs executing their bodies.  Fresh
     obligations per mode (so the composed run starts with its proven
     gates closed, exactly like a cold engine run); the modes are
     interleaved and each wall is the best of three, because the gate
     in scripts/ci.sh compares them and the full batteries finish in
     milliseconds — a single GC major slice would otherwise dominate. *)
  let code_proof_dag ~overrides =
    Engine.Dag.build_exn
      (List.concat_map snd
         (Engine.Plan.code_proof_obligations ~seed ~overrides layout))
  in
  let ov_off_dag = code_proof_dag ~overrides:false in
  let ov_on_dag = code_proof_dag ~overrides:true in
  let ov_off = ref infinity and ov_on = ref infinity in
  for _ = 1 to 3 do
    let _, woff = time (fun () -> Engine.Pool.run ~jobs:1 ov_off_dag) in
    let _, won = time (fun () -> Engine.Pool.run ~jobs:1 ov_on_dag) in
    ov_off := Float.min !ov_off woff;
    ov_on := Float.min !ov_on won
  done;
  let ov_off = !ov_off and ov_on = !ov_on in

  (* the same comparison restricted to the functions that actually have
     same-layer callees — the deep call trees the composition targets;
     everything else is identical in both modes and only dilutes the
     ratio *)
  let ctx = Check.Code_proof.ctx layout in
  let stubbed_fns =
    List.filter
      (fun fn -> Check.Code_proof.same_layer_callees layout fn <> [])
      (List.concat_map (Layers.functions_of_layer layout) Mem_spec.layer_names)
  in
  let battery_wall run =
    let w = ref infinity in
    for _ = 1 to 3 do
      let _, wi =
        time (fun () -> List.iter (fun fn -> ignore (run fn)) stubbed_fns)
      in
      w := Float.min !w wi
    done;
    !w
  in
  let stub_off = battery_wall (Check.Code_proof.run_function ctx) in
  let stub_on = battery_wall (Check.Code_proof.run_function_composed ctx) in

  (* per-function, the deepest call trees are where stubbing pays: the
     composed battery replaces the whole callee subtree with one
     contract evaluation.  Report the best per-function ratio (each
     side best of three) as the headline compositional win. *)
  let deepest_fn, deepest_ratio =
    List.fold_left
      (fun (bfn, bratio) fn ->
        let best run =
          let w = ref infinity in
          for _ = 1 to 3 do
            let _, wi = time (fun () -> ignore (run fn)) in
            w := Float.min !w wi
          done;
          !w
        in
        let mono = best (Check.Code_proof.run_function ctx) in
        let comp = best (Check.Code_proof.run_function_composed ctx) in
        let r = mono /. Float.max comp 1e-9 in
        if r > bratio then (fn, r) else (bfn, bratio))
      ("", 0.0) stubbed_fns
  in

  let open Engine.Jsonx in
  let json =
    Obj
      [
        ("bench", Str "engine");
        ("quick", Bool quick);
        ("seed", Int seed);
        ("obligations", Int (Engine.Dag.size dag));
        ("plan_build_s", Float build_s);
        ("cold_wall_s", Float cold);
        ("warm_wall_s", Float warm);
        ("warm_speedup", Float (cold /. Float.max warm 1e-9));
        ("cold_cache_hits", Int (hits cold_execs));
        ("warm_cache_hits", Int (hits warm_execs));
        ( "phase_walls",
          List
            (List.map
               (fun (p, w) -> Obj [ ("phase", Str p); ("busy_s", Float w) ])
               phase_walls) );
        ( "jobs_points",
          List
            (List.map
               (fun (jobs, wall, _) ->
                 Obj
                   [
                     ("jobs", Int jobs);
                     ("wall_s", Float wall);
                     ("speedup", Float (serial /. Float.max wall 1e-9));
                   ])
               jobs_points) );
        ("override_off_code_proof_s", Float ov_off);
        ("override_on_code_proof_s", Float ov_on);
        ("override_speedup", Float (ov_off /. Float.max ov_on 1e-9));
        ("override_stubbed_off_s", Float stub_off);
        ("override_stubbed_on_s", Float stub_on);
        ("override_stubbed_speedup", Float (stub_off /. Float.max stub_on 1e-9));
        ("override_deepest_fn", Str deepest_fn);
        ("override_deepest_speedup", Float deepest_ratio);
      ]
  in
  write_file !out (to_multiline_string json);
  print_string (to_multiline_string json)

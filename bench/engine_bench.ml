(* Engine scaling benchmark: cold/warm proof-cache wall-times and
   jobs-vs-speedup points for the obligation pool, emitted as
   BENCH_engine.json (consumed by CI as an artifact; see
   EXPERIMENTS.md).  The DAG comes from Plan.build, so the measured
   obligations include the static-analysis phase (one dependency-free
   lint obligation per function) alongside the proof phases.

   Run with: dune exec bench/engine_bench.exe -- [--quick] [--out FILE] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out = ref "BENCH_engine.json" in
  Array.iteri
    (fun i a -> if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let seed = 2024 in
  let layout = Layout.default Geometry.tiny in
  let plan, build_s = time (fun () -> Engine.Plan.build ~quick ~seed layout) in
  let dag = plan.Engine.Plan.dag in

  (* jobs scaling, no cache: every obligation executes *)
  let jobs_points =
    List.map
      (fun jobs ->
        let _, wall = time (fun () -> Engine.Pool.run ~jobs dag) in
        (jobs, wall))
      [ 1; 2; 4 ]
  in
  let serial = List.assoc 1 jobs_points in

  (* proof cache: cold run populates, warm run replays *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-engine-bench-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let cache = Engine.Cache.create ~dir in
  let cold_execs, cold = time (fun () -> Engine.Pool.run ~cache ~jobs:1 dag) in
  let warm_execs, warm = time (fun () -> Engine.Pool.run ~cache ~jobs:1 dag) in
  let hits execs =
    List.length (List.filter (fun (e : Engine.Pool.exec) -> e.cache = Engine.Pool.Hit) execs)
  in
  rm_rf dir;

  let open Engine.Jsonx in
  let json =
    Obj
      [
        ("bench", Str "engine");
        ("quick", Bool quick);
        ("seed", Int seed);
        ("obligations", Int (Engine.Dag.size dag));
        ("plan_build_s", Float build_s);
        ("cold_wall_s", Float cold);
        ("warm_wall_s", Float warm);
        ("warm_speedup", Float (cold /. Float.max warm 1e-9));
        ("cold_cache_hits", Int (hits cold_execs));
        ("warm_cache_hits", Int (hits warm_execs));
        ( "jobs_points",
          List
            (List.map
               (fun (jobs, wall) ->
                 Obj
                   [
                     ("jobs", Int jobs);
                     ("wall_s", Float wall);
                     ("speedup", Float (serial /. Float.max wall 1e-9));
                   ])
               jobs_points) );
      ]
  in
  write_file !out (to_multiline_string json);
  print_string (to_multiline_string json)

(* Serving benchmark: requests/s against a live --serve daemon, cold
   (first evaluation of a request) vs warm (resident-memo replay), at
   fleet sizes 1/2/4, plus a batching-window sweep and sequential
   round-trip latency percentiles — emitted as BENCH_serve.json
   (consumed by CI as an artifact; see EXPERIMENTS.md).

   Every daemon is forked fresh with its own socket and proof-cache
   directory, so "cold" really is cold.  Throughput is measured with a
   pipelined harness: several client connections each keep a small
   window of requests in flight, and responses are drained with select
   — the dispatcher's admission batching coalesces the in-flight set
   into merged submissions.  The [cores] field records the machine this
   ran on: fleet scaling beyond the physical core count measures
   dispatch overhead, not parallel speedup, and the JSON reports
   whatever the machine actually delivered.

   Run with: dune exec bench/serve_bench.exe -- [--out FILE] *)

module Protocol = Serve.Protocol
module Driver = Serve.Driver
module Server = Serve.Server
module Client = Serve.Client

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_path =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-serve-bench-%d-%d%s" (Unix.getpid ()) !n suffix)

(* The benchmark request: --quick, body lints only — small enough that
   the serving machinery, not the proof content, dominates the warm
   path. *)
let payload seed =
  Printf.sprintf {|{"op":"verify","quick":true,"seed":%d,"lints":"body"}|} seed

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)

let with_daemon ~fleet ~window_ms f =
  let socket = fresh_path ".sock" in
  let cache_dir = fresh_path ".cache" in
  match Unix.fork () with
  | 0 ->
      (try
         Server.serve
           {
             Server.socket;
             fleet;
             batch_window_ms = window_ms;
             batch_max = 32;
             cache_dir = Some cache_dir;
             jobs = 1;
             retries = 2;
             timeout_ms = 0;
             prewarm = false;
           }
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Client.shutdown ~socket) with _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          rm_rf cache_dir)
        (fun () ->
          if not (Client.wait_ready ~attempts:200 ~socket ()) then
            failwith "daemon did not come up";
          f socket)

(* ------------------------------------------------------------------ *)
(* Harnesses                                                           *)

let round_trip socket body =
  match Client.request ~socket body with
  | Ok r -> r
  | Error msg -> failwith ("round trip failed: " ^ msg)

(* Pipelined throughput: [conns] connections, [depth] requests written
   per connection per round, [rounds] rounds; responses drained with
   select between writes so the dispatcher never blocks on a full
   client socket.  Returns requests per second. *)
let throughput ~socket ~conns ~depth ~rounds body =
  let fds =
    Array.init conns (fun _ ->
        match Client.connect socket with Ok fd -> fd | Error m -> failwith m)
  in
  let readers = Array.map (fun _ -> Protocol.Reader.create ()) fds in
  let got = ref 0 in
  let total = conns * depth * rounds in
  let chunk = Bytes.create 65536 in
  let drain timeout =
    match Unix.select (Array.to_list fds) [] [] timeout with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            let i = ref 0 in
            Array.iteri (fun j f -> if f = fd then i := j) fds;
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> failwith "daemon closed a benchmark connection"
            | n ->
                Protocol.Reader.feed readers.(!i) (Bytes.sub_string chunk 0 n);
                let rec frames () =
                  match Protocol.Reader.next readers.(!i) with
                  | `Frame _ ->
                      incr got;
                      frames ()
                  | `More -> ()
                  | `Oversized _ -> failwith "oversized response"
                in
                frames ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let (), wall =
    time (fun () ->
        for _ = 1 to rounds do
          Array.iter
            (fun fd ->
              for _ = 1 to depth do
                Protocol.write_frame fd body
              done)
            fds;
          drain 0.0
        done;
        while !got < total do
          drain 0.5
        done)
  in
  Array.iter Unix.close fds;
  float_of_int total /. wall

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Sequential round-trip latency over one connection per request. *)
let latencies ~socket ~n body =
  let samples =
    Array.init n (fun _ ->
        let _, dt = time (fun () -> round_trip socket body) in
        dt)
  in
  Array.sort compare samples;
  (percentile samples 0.50, percentile samples 0.99)

(* ------------------------------------------------------------------ *)

type fleet_point = {
  fp_fleet : int;
  fp_cold_s : float;  (* first evaluation of a never-seen request *)
  fp_warm_rps : float;
  fp_p50_s : float;
  fp_p99_s : float;
}

let measure_fleet fleet =
  with_daemon ~fleet ~window_ms:2.0 (fun socket ->
      (* cold: a request the daemon has never seen — plan build + full
         execution, proof cache empty *)
      let _, cold_s = time (fun () -> round_trip socket (payload 9001)) in
      let body = payload 9001 in
      (* warm every worker: the pipelined harness spreads batches over
         the fleet; the first pass promotes each worker through
         L2 (shared packs) to its L0 response memo *)
      ignore (throughput ~socket ~conns:8 ~depth:2 ~rounds:5 body);
      let warm_rps = throughput ~socket ~conns:16 ~depth:2 ~rounds:25 body in
      let p50, p99 = latencies ~socket ~n:100 body in
      { fp_fleet = fleet; fp_cold_s = cold_s; fp_warm_rps = warm_rps;
        fp_p50_s = p50; fp_p99_s = p99 })

(* Execute-bound scaling: [n] distinct never-seen requests submitted
   concurrently, so every one compiles a plan and runs its proofs.
   This is the workload fleet parallelism exists for — on a multi-core
   host the wall divides across workers; on a single core it measures
   the (small) cost of splitting the work across processes. *)
let distinct_cold_wall ~fleet ~n =
  with_daemon ~fleet ~window_ms:0.0 (fun socket ->
      let fds =
        Array.init n (fun _ ->
            match Client.connect socket with Ok fd -> fd | Error m -> failwith m)
      in
      let chunk = Bytes.create 65536 in
      let readers = Array.map (fun _ -> Protocol.Reader.create ()) fds in
      let got = ref 0 in
      let (), wall =
        time (fun () ->
            Array.iteri
              (fun i fd -> Protocol.write_frame fd (payload (9100 + i)))
              fds;
            while !got < n do
              match Unix.select (Array.to_list fds) [] [] 1.0 with
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      let i = ref 0 in
                      Array.iteri (fun j f -> if f = fd then i := j) fds;
                      match Unix.read fd chunk 0 (Bytes.length chunk) with
                      | 0 -> failwith "daemon closed a benchmark connection"
                      | r ->
                          Protocol.Reader.feed readers.(!i)
                            (Bytes.sub_string chunk 0 r);
                          let rec frames () =
                            match Protocol.Reader.next readers.(!i) with
                            | `Frame _ ->
                                incr got;
                                frames ()
                            | `More -> ()
                            | `Oversized _ -> failwith "oversized response"
                          in
                          frames ())
                    readable
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done)
      in
      Array.iter Unix.close fds;
      wall)

let measure_window window_ms =
  with_daemon ~fleet:2 ~window_ms (fun socket ->
      let body = payload 9002 in
      ignore (round_trip socket body);
      ignore (throughput ~socket ~conns:8 ~depth:2 ~rounds:5 body);
      let rps = throughput ~socket ~conns:8 ~depth:2 ~rounds:25 body in
      let p50, p99 = latencies ~socket ~n:50 body in
      (window_ms, rps, p50, p99))

let () =
  let out = ref "BENCH_serve.json" in
  Array.iteri
    (fun i a -> if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cores = Domain.recommended_domain_count () in
  let fleet_points = List.map measure_fleet [ 1; 2; 4 ] in
  let windows = List.map measure_window [ 0.0; 2.0; 10.0 ] in
  let distinct_n = 6 in
  let distinct =
    List.map (fun fleet -> (fleet, distinct_cold_wall ~fleet ~n:distinct_n)) [ 1; 4 ]
  in
  let point n = List.nth fleet_points n in
  let f4_vs_f1 = (point 2).fp_warm_rps /. (point 0).fp_warm_rps in
  let warm_best =
    List.fold_left (fun acc p -> Float.max acc p.fp_warm_rps) 0.0 fleet_points
  in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"serve\",\n";
  p "  \"quick\": true,\n";
  p "  \"cores\": %d,\n" cores;
  p "  \"request\": \"quick tiny, body lints\",\n";
  p "  \"fleet_points\": [\n";
  List.iteri
    (fun i fp ->
      p
        "    {\"fleet\": %d, \"cold_first_request_s\": %g, \"warm_rps\": %g, \
         \"warm_p50_s\": %g, \"warm_p99_s\": %g}%s\n"
        fp.fp_fleet fp.fp_cold_s fp.fp_warm_rps fp.fp_p50_s fp.fp_p99_s
        (if i = List.length fleet_points - 1 then "" else ","))
    fleet_points;
  p "  ],\n";
  p "  \"window_sweep\": [\n";
  List.iteri
    (fun i (w, rps, p50, p99) ->
      p
        "    {\"window_ms\": %g, \"warm_rps\": %g, \"warm_p50_s\": %g, \
         \"warm_p99_s\": %g}%s\n"
        w rps p50 p99
        (if i = List.length windows - 1 then "" else ","))
    windows;
  p "  ],\n";
  p "  \"distinct_cold\": [\n";
  List.iteri
    (fun i (fleet, wall) ->
      p "    {\"fleet\": %d, \"requests\": %d, \"wall_s\": %g}%s\n" fleet
        distinct_n wall
        (if i = List.length distinct - 1 then "" else ","))
    distinct;
  p "  ],\n";
  let d1 = List.assoc 1 distinct and d4 = List.assoc 4 distinct in
  p "  \"fleet4_vs_fleet1_distinct_cold\": %g,\n" (d1 /. d4);
  p "  \"warm_rps_best\": %g,\n" warm_best;
  p "  \"fleet4_vs_fleet1_warm\": %g\n" f4_vs_f1;
  p "}\n";
  close_out oc;
  Printf.printf
    "serve bench: cores=%d warm_rps fleet1=%.0f fleet2=%.0f fleet4=%.0f \
     (f4/f1 %.2fx), cold first request %.3fs -> %s\n"
    cores (point 0).fp_warm_rps (point 1).fp_warm_rps (point 2).fp_warm_rps
    f4_vs_f1 (point 0).fp_cold_s !out

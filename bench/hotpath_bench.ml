(* Code-proof hot-path microbenchmark: splits one full code-proof pass
   into its components — case generation, specification evaluation, and
   MIRlight execution under the reference interpreter vs. the
   closure-compiled executor — so the executor speedup is visible in
   isolation from the (shared) generation/spec costs.

   Run with: dune exec bench/hotpath_bench.exe -- [--seed N] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let seed = ref 2024 in
  Array.iteri
    (fun i a ->
      if a = "--seed" && i + 1 < Array.length Sys.argv then
        seed := int_of_string Sys.argv.(i + 1))
    Sys.argv;
  let layout = Layout.default Geometry.tiny in
  (* ctx build covers the input pool plus one-time case generation for
     every function (the per-function check memo); after this,
     check_function is a table lookup *)
  let ctx, gen_s = time (fun () -> Check.Code_proof.ctx ~seed:!seed layout) in
  let fns =
    List.concat_map (Layers.functions_of_layer layout) Mem_spec.layer_names
  in
  let checks, lookup_s =
    time (fun () -> List.filter_map (Check.Code_proof.check_function ctx) fns)
  in
  let cases = List.fold_left (fun n (_, c) -> n + List.length c.Mirverif.Refine.cases) 0 checks in
  let run_with call =
    List.iter
      (fun (lname, (c : Absdata.t Mirverif.Refine.check)) ->
        List.iter
          (fun (cs : Absdata.t Mirverif.Refine.case) ->
            ignore (call lname c cs))
          c.Mirverif.Refine.cases)
      checks
  in
  let (), spec_s =
    time (fun () ->
        run_with (fun _ c cs ->
            let spec_args = Option.value ~default:cs.args cs.spec_args in
            Mirverif.Spec.apply c.spec cs.abs spec_args))
  in
  let (), interp_s =
    time (fun () ->
        run_with (fun lname c cs ->
            Mir.Interp.call ~fuel:c.fuel
              (Layers.env_for layout ~layer:lname)
              ~abs:cs.abs ~mem:cs.mem c.fn cs.args))
  in
  let (), compiled_s =
    time (fun () ->
        run_with (fun lname c cs ->
            Mir.Compile.call ~fuel:c.fuel
              (Layers.compiled_for layout ~layer:lname)
              ~abs:cs.abs ~mem:cs.mem c.fn cs.args))
  in
  Printf.printf "functions: %d  cases: %d\n" (List.length checks) cases;
  Printf.printf "ctx build (gen)      %8.2f ms\n" (gen_s *. 1e3);
  Printf.printf "memoized lookup      %8.2f ms\n" (lookup_s *. 1e3);
  Printf.printf "spec evaluation      %8.2f ms\n" (spec_s *. 1e3);
  Printf.printf "interp execution     %8.2f ms\n" (interp_s *. 1e3);
  Printf.printf "compiled execution   %8.2f ms\n" (compiled_s *. 1e3);
  Printf.printf "executor speedup     %8.2fx\n" (interp_s /. Float.max compiled_s 1e-9)

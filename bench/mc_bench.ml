(* Model-checker benchmark: raw exploration throughput (states/sec),
   visited-set dedup ratio, and the sleep-set POR pruning factor on
   the tiny geometry, emitted as BENCH_mc.json (consumed by CI as an
   artifact; see EXPERIMENTS.md).  The POR point re-runs the same
   bound without reduction, so the JSON also double-checks that
   reduction leaves the reachable state count unchanged.

   Run with: dune exec bench/mc_bench.exe -- [--quick] [--out FILE] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out = ref "BENCH_mc.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let layout = Layout.default Geometry.tiny in
  let depth = if quick then 4 else 5 in
  (* throughput: checks on, POR on — the configuration the engine
     phase actually runs *)
  let full, full_s =
    time (fun () -> Mc.Explore.run (Mc.Explore.config ~depth layout))
  in
  (* pruning factor: same bound, checks off to isolate exploration *)
  let por, por_s =
    time (fun () ->
      Mc.Explore.run (Mc.Explore.config ~depth ~checks:false layout))
  in
  let nopor, nopor_s =
    time (fun () ->
      Mc.Explore.run
        (Mc.Explore.config ~depth ~checks:false ~por:false layout))
  in
  let fs = full.Mc.Explore.stats in
  let ps = por.Mc.Explore.stats in
  let ns = nopor.Mc.Explore.stats in
  let states_per_sec = float_of_int fs.explored /. Float.max 1e-9 full_s in
  let dedup_ratio =
    float_of_int ns.deduped /. float_of_int (Int.max 1 ns.transitions)
  in
  (* interleaving-level pruning: dedup-free tree walks with and
     without sleep sets — each skipped expansion cuts a subtree, so
     per-edge counts on the deduplicated graph undercount the
     reduction *)
  let il_por =
    Mc.Explore.interleavings (Mc.Explore.config ~depth ~checks:false layout)
  in
  let il_full =
    Mc.Explore.interleavings
      (Mc.Explore.config ~depth ~checks:false ~por:false layout)
  in
  let pruning_factor =
    1. -. (float_of_int il_por /. float_of_int (Int.max 1 il_full))
  in
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"mc\",\n\
    \  \"geometry\": \"tiny\",\n\
    \  \"depth\": %d,\n\
    \  \"universe\": %d,\n\
    \  \"states\": %d,\n\
    \  \"transitions\": %d,\n\
    \  \"checked_wall_s\": %.6f,\n\
    \  \"states_per_sec\": %.1f,\n\
    \  \"dedup_ratio\": %.4f,\n\
    \  \"por\": { \"states\": %d, \"transitions\": %d, \"pruned\": %d, \"wall_s\": %.6f, \"interleavings\": %d },\n\
    \  \"no_por\": { \"states\": %d, \"transitions\": %d, \"wall_s\": %.6f, \"interleavings\": %d },\n\
    \  \"pruning_factor\": %.4f,\n\
    \  \"por_states_match\": %b\n\
     }\n"
    depth
    (List.length (Mc.Universe.events layout))
    fs.explored fs.transitions full_s states_per_sec dedup_ratio ps.explored
    ps.transitions ps.pruned por_s il_por ns.explored ns.transitions nopor_s
    il_full pruning_factor
    (por.Mc.Explore.keys = nopor.Mc.Explore.keys);
  close_out oc;
  Printf.printf
    "mc bench: depth %d, %d states (%.0f/s), dedup %.2f, POR pruned %.1f%% \
     (states match: %b)\n"
    depth fs.explored states_per_sec dedup_ratio (100. *. pruning_factor)
    (por.Mc.Explore.keys = nopor.Mc.Explore.keys)

(* Supervision overhead benchmark: wall-time of the obligation pool
   with supervision disabled (legacy path: no timeout, no retries, no
   chaos), with a production supervision config (deadline armed,
   retries budgeted — the per-attempt bookkeeping is paid even when
   nothing fails), and under full chaos injection (crashes, hangs,
   worker kills, clock skew absorbed by retry/respawn).  Emitted as
   BENCH_supervisor.json (see EXPERIMENTS.md).

   Run with: dune exec bench/supervisor_bench.exe -- [--quick] [--out FILE] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out = ref "BENCH_supervisor.json" in
  Array.iteri
    (fun i a -> if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let seed = 2024 in
  let layout = Layout.default Geometry.tiny in
  let plan = Engine.Plan.build ~quick ~seed layout in
  let dag = plan.Engine.Plan.dag in
  let n = Engine.Dag.size dag in
  let jobs = 4 in

  let best f =
    let _, w1 = time f in
    let _, w2 = time f in
    Float.min w1 w2
  in
  let bare = best (fun () -> Engine.Pool.run ~jobs dag) in

  let supervised_cfg =
    { Engine.Supervisor.default with timeout = Some 30.0; retries = 2; seed }
  in
  let supervised = best (fun () -> Engine.Pool.run ~sup:supervised_cfg ~jobs dag) in

  let chaos_cfg () =
    {
      Engine.Supervisor.default with
      timeout = Some 0.2;
      retries = 2;
      seed;
      chaos = Some (Engine.Engine_chaos.create ~seed:42 ());
    }
  in
  let chaos_wall, chaos_totals, chaos_stats =
    let (execs, stats), w =
      time (fun () -> Engine.Pool.run_with_stats ~sup:(chaos_cfg ()) ~jobs dag)
    in
    let totals =
      Engine.Supervisor.totals
        (List.map (fun (e : Engine.Pool.exec) -> e.Engine.Pool.trail) execs)
    in
    (w, totals, stats)
  in

  let open Engine.Jsonx in
  let json =
    Obj
      [
        ("bench", Str "supervisor");
        ("quick", Bool quick);
        ("seed", Int seed);
        ("obligations", Int n);
        ("jobs", Int jobs);
        ("bare_wall_s", Float bare);
        ("supervised_wall_s", Float supervised);
        ( "supervision_overhead_pct",
          Float (100.0 *. ((supervised /. Float.max bare 1e-9) -. 1.0)) );
        ( "supervision_overhead_us_per_obligation",
          Float (1e6 *. (supervised -. bare) /. float_of_int (max n 1)) );
        ("chaos_wall_s", Float chaos_wall);
        ("chaos_slowdown", Float (chaos_wall /. Float.max bare 1e-9));
        ("chaos_retried", Int chaos_totals.Engine.Supervisor.retried);
        ("chaos_recovered", Int chaos_totals.Engine.Supervisor.recovered);
        ("chaos_quarantined", Int chaos_totals.Engine.Supervisor.quarantined);
        ("chaos_worker_respawns", Int chaos_stats.Engine.Pool.respawns);
      ]
  in
  write_file !out (to_multiline_string json);
  print_string (to_multiline_string json)

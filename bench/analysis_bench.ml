(* Abstract-interpretation benchmark: per-domain wall time over the
   SCC condensation of the compiled 15-layer stack, with finding /
   discharge counts, emitted as BENCH_analysis.json (consumed by CI as
   an artifact; see EXPERIMENTS.md).

   Run with: dune exec bench/analysis_bench.exe -- [--out FILE] [--print] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let out = ref "BENCH_analysis.json" in
  let print_findings = Array.exists (String.equal "--print") Sys.argv in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let layout = Layout.default Geometry.tiny in
  let compiled, compile_s = time (fun () -> Layers.compiled layout) in
  let program = compiled.Rustlite.Pipeline.program in
  let cg, cg_s = time (fun () -> Analysis.Callgraph.build program) in
  let sccs = Analysis.Callgraph.sccs cg in
  let dump tag findings =
    if print_findings then
      List.iter
        (fun (fn, f) ->
          Printf.printf "%-12s %-24s %s\n" tag fn
            (Analysis.Lint.finding_to_string f))
        findings
  in

  (* interval domain: bounds findings + overflow discharges *)
  let interval, interval_s =
    time (fun () ->
        List.map
          (fun funcs -> Analysis.Interval_lint.check program ~funcs)
          sccs)
  in
  let itv_findings = List.concat_map fst interval in
  dump "interval" itv_findings;
  let itv_errors =
    List.fold_left
      (fun n (s : Analysis.Interval_lint.stats) -> n + s.findings)
      0 (List.map snd interval)
  and itv_discharged =
    List.fold_left
      (fun n (s : Analysis.Interval_lint.stats) -> n + s.discharged)
      0 (List.map snd interval)
  and itv_iters =
    List.fold_left
      (fun n (s : Analysis.Interval_lint.stats) -> n + s.iterations)
      0 (List.map snd interval)
  in

  (* taint domain: secret-flow findings *)
  let cfg = Security.Labels.secret_flow_config layout program in
  let taint, taint_s =
    time (fun () ->
        List.map (fun funcs -> Analysis.Secret_flow.check cfg ~funcs) sccs)
  in
  let sf_findings = List.concat_map fst taint in
  dump "secret-flow" sf_findings;
  let sf_count =
    List.fold_left
      (fun n (s : Analysis.Secret_flow.stats) -> n + s.findings)
      0 (List.map snd taint)
  and sf_iters =
    List.fold_left
      (fun n (s : Analysis.Secret_flow.stats) -> n + s.iterations)
      0 (List.map snd taint)
  and sf_summaries =
    List.fold_left
      (fun n (s : Analysis.Secret_flow.stats) -> n + s.summaries)
      0 (List.map snd taint)
  in

  (* borrow checking: per-function loans + findings *)
  let borrow, borrow_s =
    time (fun () ->
        Mir.Syntax.fold_bodies
          (fun fn body acc ->
            let _, findings, stats = Analysis.Borrow_lint.check ~name:fn body in
            (fn, findings, stats) :: acc)
          program [])
  in
  dump "borrow"
    (List.concat_map
       (fun (fn, fs, _) -> List.map (fun f -> (fn, f)) fs)
       borrow);
  let bw_loans =
    List.fold_left
      (fun n (_, _, (s : Analysis.Borrow_lint.stats)) -> n + s.loans)
      0 borrow
  and bw_findings =
    List.fold_left (fun n (_, fs, _) -> n + List.length fs) 0 borrow
  in

  (* alias analysis: per-SCC Andersen footprints + the aliased-frame
     lint, with the same trusted-primitive model the engine uses *)
  let trusted =
    List.map
      (fun (s : Absdata.t Mirverif.Spec.t) -> s.Mirverif.Spec.name)
      Trusted.all
  in
  let alias_cfg =
    {
      Analysis.Alias_lint.program;
      prim = Check.Code_proof.prim_summary;
      fn_layer = Layers.layer_of_function layout;
      accessor =
        (fun ~owner ~callee ->
          List.mem callee trusted
          || Layers.layer_of_function layout callee = Some owner);
    }
  in
  let alias, alias_s =
    time (fun () ->
        List.map (fun funcs -> Analysis.Alias_lint.check alias_cfg ~funcs) sccs)
  in
  dump "alias" (List.concat_map fst alias);
  let al_exact =
    List.fold_left
      (fun n (s : Analysis.Alias_lint.stats) -> n + s.footprints)
      0 (List.map snd alias)
  and al_findings =
    List.fold_left
      (fun n (s : Analysis.Alias_lint.stats) -> n + s.findings)
      0 (List.map snd alias)
  and al_discharged =
    List.fold_left
      (fun n (s : Analysis.Alias_lint.stats) -> n + s.discharged)
      0 (List.map snd alias)
  in

  let functions =
    List.fold_left (fun n scc -> n + List.length scc) 0 sccs
  in
  let open Engine.Jsonx in
  let json =
    Obj
      [
        ("bench", Str "analysis");
        ("functions", Int functions);
        ("sccs", Int (List.length sccs));
        ("compile_s", Float compile_s);
        ("callgraph_s", Float cg_s);
        ( "interval",
          Obj
            [
              ("wall_s", Float interval_s);
              ("findings", Int itv_errors);
              ("discharged", Int itv_discharged);
              ("iterations", Int itv_iters);
            ] );
        ( "secret_flow",
          Obj
            [
              ("wall_s", Float taint_s);
              ("findings", Int sf_count);
              ("iterations", Int sf_iters);
              ("summaries", Int sf_summaries);
            ] );
        ( "borrow",
          Obj
            [
              ("wall_s", Float borrow_s);
              ("loans", Int bw_loans);
              ("findings", Int bw_findings);
            ] );
        ( "alias",
          Obj
            [
              ("wall_s", Float alias_s);
              ("exact_footprints", Int al_exact);
              ("findings", Int al_findings);
              ("discharged", Int al_discharged);
            ] );
      ]
  in
  write_file !out (to_multiline_string json);
  print_string (to_multiline_string json)

(* Abstract-interpretation benchmark: per-domain wall time over the
   SCC condensation of the compiled 15-layer stack, with finding /
   discharge counts, emitted as BENCH_analysis.json (consumed by CI as
   an artifact; see EXPERIMENTS.md).

   Run with: dune exec bench/analysis_bench.exe -- [--out FILE] [--print] *)

open Hyperenclave

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let out = ref "BENCH_analysis.json" in
  let print_findings = Array.exists (String.equal "--print") Sys.argv in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let layout = Layout.default Geometry.tiny in
  let compiled, compile_s = time (fun () -> Layers.compiled layout) in
  let program = compiled.Rustlite.Pipeline.program in
  let cg, cg_s = time (fun () -> Analysis.Callgraph.build program) in
  let sccs = Analysis.Callgraph.sccs cg in
  let dump tag findings =
    if print_findings then
      List.iter
        (fun (fn, f) ->
          Printf.printf "%-12s %-24s %s\n" tag fn
            (Analysis.Lint.finding_to_string f))
        findings
  in

  (* interval domain: bounds findings + overflow discharges *)
  let interval, interval_s =
    time (fun () ->
        List.map
          (fun funcs -> Analysis.Interval_lint.check program ~funcs)
          sccs)
  in
  let itv_findings = List.concat_map fst interval in
  dump "interval" itv_findings;
  let itv_errors =
    List.fold_left
      (fun n (s : Analysis.Interval_lint.stats) -> n + s.findings)
      0 (List.map snd interval)
  and itv_discharged =
    List.fold_left
      (fun n (s : Analysis.Interval_lint.stats) -> n + s.discharged)
      0 (List.map snd interval)
  and itv_iters =
    List.fold_left
      (fun n (s : Analysis.Interval_lint.stats) -> n + s.iterations)
      0 (List.map snd interval)
  in

  (* taint domain: secret-flow findings *)
  let cfg = Security.Labels.secret_flow_config layout program in
  let taint, taint_s =
    time (fun () ->
        List.map (fun funcs -> Analysis.Secret_flow.check cfg ~funcs) sccs)
  in
  let sf_findings = List.concat_map fst taint in
  dump "secret-flow" sf_findings;
  let sf_count =
    List.fold_left
      (fun n (s : Analysis.Secret_flow.stats) -> n + s.findings)
      0 (List.map snd taint)
  and sf_iters =
    List.fold_left
      (fun n (s : Analysis.Secret_flow.stats) -> n + s.iterations)
      0 (List.map snd taint)
  and sf_summaries =
    List.fold_left
      (fun n (s : Analysis.Secret_flow.stats) -> n + s.summaries)
      0 (List.map snd taint)
  in

  let functions =
    List.fold_left (fun n scc -> n + List.length scc) 0 sccs
  in
  let open Engine.Jsonx in
  let json =
    Obj
      [
        ("bench", Str "analysis");
        ("functions", Int functions);
        ("sccs", Int (List.length sccs));
        ("compile_s", Float compile_s);
        ("callgraph_s", Float cg_s);
        ( "interval",
          Obj
            [
              ("wall_s", Float interval_s);
              ("findings", Int itv_errors);
              ("discharged", Int itv_discharged);
              ("iterations", Int itv_iters);
            ] );
        ( "secret_flow",
          Obj
            [
              ("wall_s", Float taint_s);
              ("findings", Int sf_count);
              ("iterations", Int sf_iters);
              ("summaries", Int sf_summaries);
            ] );
      ]
  in
  write_file !out (to_multiline_string json);
  print_string (to_multiline_string json)

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, adapted to this artifact (see EXPERIMENTS.md).

     Table 1  code and proof statistics + full verification-pass cost
     Fig. 1   architecture: domain x region access matrix + hypercall cost
     Fig. 2   address translation: per-domain views + nested-walk cost
     Fig. 3   MIRVerif pipeline: stage statistics + compile/check cost
     Fig. 4   pointer classification: census + per-kind dereference cost
     Fig. 5   wrong designs: detect/pass matrix + invariant-check cost
     Ablations: temp-lifting on/off, geometry scaling

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Hyperenclave
open Security

let tiny_layout = Layout.default Geometry.tiny
let x86_layout = Layout.default Geometry.x86_64

let page l i = Int64.mul (Int64.of_int (Geometry.page_size l.Layout.geom)) (Int64.of_int i)

let header title =
  Format.printf "@.==========================================================@.";
  Format.printf "%s@." title;
  Format.printf "==========================================================@."

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)

let run_benchs ~name tests =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ]
      (Test.make_grouped ~name ~fmt:"%s %s" tests)
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (bench_name, ols_result) ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some (t :: _) -> t | _ -> nan
      in
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "  %-52s %s/op@." bench_name pretty)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let bench name f = Test.make ~name (Staged.stage f)

(* ------------------------------------------------------------------ *)
(* Table 1: code and proof statistics                                  *)

let count_dir_lines dir =
  (* wc over the repo's OCaml sources; bench runs from the repo root *)
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.fold_left
         (fun acc f ->
           let ic = open_in (Filename.concat dir f) in
           let n = ref 0 in
           (try
              while true do
                ignore (input_line ic);
                incr n
              done
            with End_of_file -> close_in ic);
           acc + !n)
         0
  else 0

let table1 () =
  header "Table 1: code and proof statistics (paper vs this artifact)";
  let out = Layers.compiled tiny_layout in
  let rows =
    [
      ("HyperEnclave memory module (Rust / Rustlite)", 2130, out.Rustlite.Pipeline.source_lines);
      ("MIRVerif framework (lib/mir + lib/core)", 3778,
       count_dir_lines "lib/mir" + count_dir_lines "lib/core");
      ("Substrate + page-table specs (lib/hyperenclave)", 4394 + 2445,
       count_dir_lines "lib/hyperenclave");
      ("Code-proof harness (lib/check)", 4191, count_dir_lines "lib/check");
      ("Top-level specs/models (lib/security)", 2015, count_dir_lines "lib/security");
      ("Top-level proofs (test suites)", 6600,
       count_dir_lines "test/mir" + count_dir_lines "test/hyperenclave"
       + count_dir_lines "test/security" + count_dir_lines "test/codeproof"
       + count_dir_lines "test/rustlite");
    ]
  in
  Format.printf "%-50s %10s %10s@." "Component" "paper LoC" "this repo";
  List.iter
    (fun (what, paper, ours) -> Format.printf "%-50s %10d %10d@." what paper ours)
    rows;
  Format.printf "@.%-50s %10s %10s@." "Verification metrics" "paper" "this repo";
  let results = Check.Code_proof.run_all tiny_layout in
  let total, passed, skipped, failed = Check.Code_proof.total_cases results in
  let check_lines = count_dir_lines "lib/check" + count_dir_lines "lib/hyperenclave" in
  List.iter
    (fun (what, paper, ours) -> Format.printf "%-50s %10s %10s@." what paper ours)
    [
      ("functions verified", "49", Printf.sprintf "%d (49 + EREMOVE ext.)" (List.length results));
      ("proof layers", "15", string_of_int Layers.layer_count);
      ("lines of MIR under verification", "3358",
       string_of_int out.Rustlite.Pipeline.mir_lines);
      ("proof/check lines per MIR line", "1.25",
       Printf.sprintf "%.2f"
         (float_of_int check_lines /. float_of_int out.Rustlite.Pipeline.mir_lines));
      ("(SeKVM baseline, per C line)", "2.16", "-");
      ("conformance cases", "-",
       Printf.sprintf "%d (%d pass / %d skip / %d fail)" total passed skipped failed);
    ];
  [
    bench "verification-pass/code-proofs(tiny)" (fun () ->
        ignore (Check.Code_proof.run_all tiny_layout));
    bench "verification-pass/code-proofs(x86-64)" (fun () ->
        ignore (Check.Code_proof.run_all x86_layout));
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 1: architecture / access matrix + hypercall cost               *)

let lifecycle_state () =
  let st = State.boot tiny_layout in
  let step what st a =
    match Transition.step st a with Ok s -> s | Error m -> failwith (what ^ ": " ^ m)
  in
  let st =
    step "create" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 2; mbuf_va = page tiny_layout 8 })
  in
  let eid = Int64.to_int (Result.get_ok (State.reg st 1)) in
  let st = step "add" st (Transition.Hc_add_page { eid; va = 0L }) in
  let st = step "add" st (Transition.Hc_add_page { eid; va = page tiny_layout 1 }) in
  let st = step "seal" st (Transition.Hc_init_done { eid }) in
  (st, eid)

let fig1 () =
  header "Fig. 1: HyperEnclave architecture — who can reach what";
  let st, eid = lifecycle_state () in
  let st2 =
    match
      Transition.step st
        (Transition.Hc_create
           { elrange_base = 0L; elrange_pages = 1; mbuf_va = page tiny_layout 8 })
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let eid2 = Int64.to_int (Result.get_ok (State.reg st2 1)) in
  let st2 =
    match Transition.step st2 (Transition.Hc_add_page { eid = eid2; va = 0L }) with
    | Ok s -> s
    | Error m -> failwith m
  in
  let regions = Layout.[ Normal; Mbuf; Monitor; Frame_area; Epc ] in
  let reach p =
    match p with
    | Principal.Os -> Result.get_ok (Nested.os_reachable st2.State.mon)
    | Principal.Enclave e ->
        let e = Result.get_ok (Absdata.find_enclave st2.State.mon e) in
        Result.get_ok (Nested.enclave_reachable st2.State.mon e)
  in
  Format.printf "%-14s" "";
  List.iter
    (fun r -> Format.printf "%-12s" (Format.asprintf "%a" Layout.pp_region r))
    regions;
  Format.printf "@.";
  List.iter
    (fun p ->
      Format.printf "%-14s" (Principal.to_string p);
      List.iter
        (fun r ->
          let yes =
            List.exists
              (fun (_, hpa, _) ->
                Layout.region_equal (Layout.region_of tiny_layout hpa) r)
              (reach p)
          in
          Format.printf "%-12s" (if yes then "yes" else "-"))
        regions;
      Format.printf "@.")
    [ Principal.Os; Principal.Enclave eid; Principal.Enclave eid2 ];
  let booted = State.boot tiny_layout in
  [
    bench "hypercall/full-lifecycle(create+2add+seal)" (fun () ->
        ignore (lifecycle_state ()));
    bench "hypercall/create-only" (fun () ->
        ignore
          (Transition.step booted
             (Transition.Hc_create
                { elrange_base = 0L; elrange_pages = 2; mbuf_va = page tiny_layout 8 })));
    bench "hypercall/enter-exit-roundtrip" (fun () ->
        let s = Result.get_ok (Transition.step st (Transition.Hc_enter { eid })) in
        ignore (Result.get_ok (Transition.step s Transition.Hc_exit)));
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 2: address translation views + nested-walk cost                *)

let fig2 () =
  header "Fig. 2: view of address translation (App vs Enclave)";
  let st, eid = lifecycle_state () in
  let d = st.State.mon in
  let e = Result.get_ok (Absdata.find_enclave d eid) in
  Format.printf "enclave %d (GVA -> GPA -> HPA through GPT then EPT):@." eid;
  List.iter
    (fun vp ->
      let va = page tiny_layout vp in
      let gpt = Result.get_ok (Pt_flat.translate d ~root:e.Enclave.gpt_root ~va) in
      match gpt with
      | None -> Format.printf "  gva %a : unmapped@." Mir.Word.pp va
      | Some (gpa, _) -> (
          let ept =
            Result.get_ok (Pt_flat.translate d ~root:e.Enclave.ept_root ~va:gpa)
          in
          match ept with
          | None ->
              Format.printf "  gva %a -> gpa %a -> fault@." Mir.Word.pp va Mir.Word.pp gpa
          | Some (hpa, _) ->
              Format.printf "  gva %a -> gpa %a -> hpa %a (%a)@." Mir.Word.pp va
                Mir.Word.pp gpa Mir.Word.pp hpa Layout.pp_region
                (Layout.region_of tiny_layout hpa)))
    [ 0; 1; 2; 8 ];
  Format.printf "primary OS (GPA -> HPA through its EPT only):@.";
  List.iter
    (fun vp ->
      let gpa = page tiny_layout vp in
      match Result.get_ok (Nested.os_translate d ~gpa) with
      | None -> Format.printf "  gpa %a : fault (outside its EPT)@." Mir.Word.pp gpa
      | Some (hpa, _) ->
          Format.printf "  gpa %a -> hpa %a (%a)@." Mir.Word.pp gpa Mir.Word.pp hpa
            Layout.pp_region
            (Layout.region_of tiny_layout hpa))
    (* pages 0 and 7 are plain normal memory, 6 is the physical mbuf
       window, 12 lies in secure memory and must fault *)
    [ 0; 6; 7; 12 ];
  let x86d = Boot.booted x86_layout in
  let x86root = Result.get_ok (Boot.os_ept_root x86d) in
  [
    bench "translate/enclave-nested(tiny,2-level x2)" (fun () ->
        ignore (Nested.enclave_translate d e ~va:0L));
    bench "translate/os-ept(tiny,2-level)" (fun () ->
        ignore (Nested.os_translate d ~gpa:0L));
    bench "translate/os-ept(x86-64,4-level)" (fun () ->
        ignore (Pt_flat.translate x86d ~root:x86root ~va:0x10_0000L));
    bench "translate/mem-load-step(tiny)" (fun () ->
        ignore (Transition.step st (Transition.Load { dst = 0; va = 0L })));
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: the MIRVerif pipeline                                       *)

let fig3 () =
  header "Fig. 3: MIRVerif pipeline stages";
  let src = Mem_source.source tiny_layout in
  let out = Layers.compiled tiny_layout in
  Format.printf
    "  source: %d lines -> MIR: %d lines (x%.2f), %d functions, %d trusted externs@."
    out.Rustlite.Pipeline.source_lines out.Rustlite.Pipeline.mir_lines
    (float_of_int out.Rustlite.Pipeline.mir_lines
    /. float_of_int out.Rustlite.Pipeline.source_lines)
    (List.length out.Rustlite.Pipeline.function_names)
    (List.length out.Rustlite.Pipeline.externs);
  List.iter
    (fun lname ->
      let fns = Layers.functions_of_layer tiny_layout lname in
      if fns <> [] then Format.printf "  %-14s %2d functions@." lname (List.length fns))
    Mem_spec.layer_names;
  let env = Layers.env_for tiny_layout ~layer:"WalkRead" in
  let d = Boot.booted tiny_layout in
  let root = Result.get_ok (Boot.os_ept_root d) in
  let args = [ Marshal_v.of_int root; Marshal_v.u64 0L ] in
  let walk_spec = Option.get (Mem_spec.find tiny_layout "walk") in
  [
    bench "pipeline/compile-memory-module" (fun () ->
        ignore (Rustlite.Pipeline.compile src));
    bench "pipeline/walk-under-MIR-interpreter" (fun () ->
        ignore (Mir.Interp.call env ~abs:d ~mem:Mir.Mem.empty "walk" args));
    bench "pipeline/walk-as-specification" (fun () ->
        ignore (Mirverif.Spec.apply walk_spec d args));
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 4: pointer classification                                      *)

let count_pointer_syntax prog =
  let refs = ref 0 and derefs = ref 0 and self_calls = ref 0 in
  let place (p : Mir.Syntax.place) =
    List.iter
      (function Mir.Syntax.Deref -> incr derefs | _ -> ())
      p.Mir.Syntax.elems
  in
  let operand = function
    | Mir.Syntax.Copy p | Mir.Syntax.Move p -> place p
    | Mir.Syntax.Const _ -> ()
  in
  let rvalue = function
    | Mir.Syntax.Ref p | Mir.Syntax.Address_of p ->
        incr refs;
        place p
    | Mir.Syntax.Use op | Mir.Syntax.Repeat (op, _) | Mir.Syntax.Cast (op, _)
    | Mir.Syntax.Unary (_, op) ->
        operand op
    | Mir.Syntax.Binary (_, a, b) | Mir.Syntax.Checked_binary (_, a, b) ->
        operand a;
        operand b
    | Mir.Syntax.Len p | Mir.Syntax.Discriminant p -> place p
    | Mir.Syntax.Aggregate (_, ops) -> List.iter operand ops
  in
  Mir.Syntax.fold_bodies
    (fun _ body () ->
      Array.iter
        (fun (blk : Mir.Syntax.block) ->
          List.iter
            (fun stmt ->
              match stmt with
              | Mir.Syntax.Assign (p, rv) ->
                  place p;
                  rvalue rv
              | Mir.Syntax.Set_discriminant (p, _) -> place p
              | Mir.Syntax.Storage_live _ | Mir.Syntax.Storage_dead _
              | Mir.Syntax.Nop ->
                  ())
            blk.Mir.Syntax.stmts;
          match blk.Mir.Syntax.term with
          | Mir.Syntax.Call { dest; func; args; _ } ->
              place dest;
              List.iter operand args;
              if String.contains func ':' then incr self_calls
          | Mir.Syntax.Switch_int (op, _, _) -> operand op
          | Mir.Syntax.Assert { cond; _ } -> operand cond
          | Mir.Syntax.Drop (p, _) -> place p
          | Mir.Syntax.Goto _ | Mir.Syntax.Return | Mir.Syntax.Unreachable -> ())
        body.Mir.Syntax.blocks)
    prog ();
  (!refs, !derefs, !self_calls)

let fig4 () =
  header "Fig. 4: pointer classification in the verified code";
  let out = Layers.compiled tiny_layout in
  let refs, derefs, self_calls = count_pointer_syntax out.Rustlite.Pipeline.program in
  Format.printf "  &-references taken (case 1: caller-owned pointers):    %d@." refs;
  Format.printf "  pointer dereferences in MIR:                           %d@." derefs;
  Format.printf "  method calls through self pointers (case 3 shape):     %d@." self_calls;
  Format.printf "  trusted-pointer primitives (case 2: phys/epcm/bitmap): %d@."
    (List.length out.Rustlite.Pipeline.externs);

  let open Mir.Builder in
  let body_concrete =
    let b = create ~name:"deref_concrete" ~params:[] ~ret_ty:(Mir.Ty.Int Mir.Ty.U64) in
    let x = local b ~name:"x" (Mir.Ty.Int Mir.Ty.U64) in
    let p = temp b ~name:"p" (Mir.Ty.Ref (Mir.Ty.Int Mir.Ty.U64)) in
    assign_var b x (Mir.Syntax.Use (cu64 1));
    assign_var b p (Mir.Syntax.Ref (pvar x));
    assign b (pderef (pvar p)) (Mir.Syntax.Use (cu64 42));
    assign_var b "_0" (Mir.Syntax.Use (copy x));
    terminate b Mir.Syntax.Return;
    finish b
  in
  let trusted_cell : int Mir.Value.trusted =
    {
      Mir.Value.tp_name = "cell";
      tp_load = (fun abs -> Ok (Mir.Value.int Mir.Ty.U64 abs));
      tp_store =
        (fun _ v -> Result.map (fun (w, _) -> Int64.to_int w) (Mir.Value.as_word v));
    }
  in
  let get_cell =
    {
      Mir.Interp.prim_name = "get_cell";
      prim_exec = (fun abs _ -> Ok (abs, Mir.Value.Ptr (Mir.Value.Trusted trusted_cell)));
    }
  in
  let body_trusted =
    let b = create ~name:"deref_trusted" ~params:[] ~ret_ty:(Mir.Ty.Int Mir.Ty.U64) in
    let p = temp b ~name:"p" (Mir.Ty.Raw (Mir.Ty.Int Mir.Ty.U64)) in
    let next = fresh_block b in
    terminate b
      (Mir.Syntax.Call { dest = pvar p; func = "get_cell"; args = []; target = Some next });
    switch_to b next;
    assign b (pderef (pvar p)) (Mir.Syntax.Use (cu64 42));
    assign_var b "_0" (Mir.Syntax.Use (Mir.Syntax.Copy (pderef (pvar p))));
    terminate b Mir.Syntax.Return;
    finish b
  in
  let make_handle =
    {
      Mir.Interp.prim_name = "make_handle";
      prim_exec = (fun abs _ -> Ok (abs, Mir.Value.ptr_rdata ~layer:"L" ~name:"obj" [ 0 ]));
    }
  in
  let use_handle =
    {
      Mir.Interp.prim_name = "use_handle";
      prim_exec =
        (fun abs args ->
          match args with
          | [ Mir.Value.Ptr (Mir.Value.Rdata _) ] ->
              Ok (abs + 1, Mir.Value.int Mir.Ty.U64 abs)
          | _ -> Error "expected an rdata handle");
    }
  in
  let body_rdata =
    let b = create ~name:"roundtrip_rdata" ~params:[] ~ret_ty:(Mir.Ty.Int Mir.Ty.U64) in
    let h = temp b ~name:"h" (Mir.Ty.Ref (Mir.Ty.Opaque "obj")) in
    let next = fresh_block b in
    let next2 = fresh_block b in
    terminate b
      (Mir.Syntax.Call { dest = pvar h; func = "make_handle"; args = []; target = Some next });
    switch_to b next;
    terminate b
      (Mir.Syntax.Call
         { dest = pvar "_0"; func = "use_handle"; args = [ copy h ]; target = Some next2 });
    switch_to b next2;
    terminate b Mir.Syntax.Return;
    finish b
  in
  let env_all =
    Mir.Interp.env
      ~prims:[ get_cell; make_handle; use_handle ]
      (Mir.Syntax.program_of_bodies [ body_concrete; body_trusted; body_rdata ])
  in
  [
    bench "pointer/concrete-path-deref" (fun () ->
        ignore (Mir.Interp.call env_all ~abs:0 ~mem:Mir.Mem.empty "deref_concrete" []));
    bench "pointer/trusted-getter-setter" (fun () ->
        ignore (Mir.Interp.call env_all ~abs:0 ~mem:Mir.Mem.empty "deref_trusted" []));
    bench "pointer/rdata-handle-roundtrip" (fun () ->
        ignore (Mir.Interp.call env_all ~abs:0 ~mem:Mir.Mem.empty "roundtrip_rdata" []));
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: malformed designs detected                                  *)

let fig5 () =
  header "Fig. 5: wrong page-table designs vs the invariant checker";
  Format.printf "%-24s %-10s %s@." "scenario" "verdict" "invariant";
  List.iter
    (fun s ->
      match (Attacks.run s, s.Attacks.expected_violation) with
      | Ok (), None -> Format.printf "%-24s %-10s %s@." s.Attacks.name "PASS" "(healthy)"
      | Ok (), Some v -> Format.printf "%-24s %-10s %s@." s.Attacks.name "REJECTED" v
      | Error msg, _ -> Format.printf "%-24s %-10s %s@." s.Attacks.name "UNEXPECTED" msg)
    Attacks.all;
  let healthy = Result.get_ok (Attacks.healthy.Attacks.build ()) in
  let aliased = Result.get_ok (Attacks.cross_enclave_alias.Attacks.build ()) in
  let st, _ = lifecycle_state () in
  let states = [ ("s", st) ] in
  let actions = Check.Gen.action_battery tiny_layout in
  [
    bench "invariants/check-healthy-state" (fun () -> ignore (Invariants.check healthy));
    bench "invariants/check-aliased-state" (fun () -> ignore (Invariants.check aliased));
    bench "noninterference/lemma5.2-one-state-battery" (fun () ->
        ignore
          (Noninterference.check_integrity ~observer:(Principal.Enclave 1) ~states
             ~actions));
  ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablations () =
  header "Ablations: design choices of the framework";
  let src =
    {|
      fn work(n: u64) -> u64 {
        let mut acc = 0;
        let mut i = 0;
        while i < n {
          acc = acc + i * i + (acc >> 3);
          i = i + 1;
        }
        acc
      }
    |}
  in
  let lifted = Rustlite.Pipeline.compile src |> Result.get_ok in
  let unlifted = Rustlite.Pipeline.compile ~lift_temps:false src |> Result.get_ok in
  let run out =
    let env = Mir.Interp.env ~prims:[] out.Rustlite.Pipeline.program in
    match Mir.Interp.call env ~abs:() ~mem:Mir.Mem.empty "work" [ Mir.Value.u64 64L ] with
    | Ok o -> (o.Mir.Interp.steps, Mir.Mem.cardinal o.Mir.Interp.mem)
    | Error e -> failwith (Mir.Interp.error_to_string e)
  in
  let steps_on, objs_on = run lifted in
  let steps_off, objs_off = run unlifted in
  Format.printf "  temp lifting on:  %d steps, %d objects allocated in memory@." steps_on objs_on;
  Format.printf "  temp lifting off: %d steps, %d objects allocated in memory (Miri-style)@."
    steps_off objs_off;
  Format.printf
    "  lifting keeps pure functions free of memory side effects — the@.";
  Format.printf
    "  proof-side win of Sec. 3.2 (only 12 of 77 paper functions need memory)@.";
  let tiny_d = Boot.booted tiny_layout in
  let tiny_root = Result.get_ok (Boot.os_ept_root tiny_d) in
  let x86_d = Boot.booted x86_layout in
  let x86_root = Result.get_ok (Boot.os_ept_root x86_d) in
  [
    bench "ablation/temp-lifting-on" (fun () -> ignore (run lifted));
    bench "ablation/temp-lifting-off(all-vars-in-memory)" (fun () -> ignore (run unlifted));
    bench "ablation/geometry-walk-tiny" (fun () ->
        ignore (Pt_flat.query tiny_d ~root:tiny_root ~va:0L));
    bench "ablation/geometry-walk-x86-64" (fun () ->
        ignore (Pt_flat.query x86_d ~root:x86_root ~va:0x40_0000L));
    bench "ablation/boot-tiny" (fun () -> ignore (Boot.boot tiny_layout));
    bench "ablation/boot-x86-64(huge-pages)" (fun () -> ignore (Boot.boot x86_layout));
  ]

(* ------------------------------------------------------------------ *)
(* Chaos: fault-injection subsystem cost                               *)

let chaos () =
  header "Chaos: fault-injected trace throughput";
  let faulty = Fault.Chaos.events_for ~seed:7 ~len:40 tiny_layout in
  let fault_free = Fault.Chaos.events_for ~faults:[] ~seed:7 ~len:40 tiny_layout in
  let n_faults =
    List.length
      (List.filter (function Fault.Chaos.Inject _ -> true | _ -> false) faulty)
  in
  Format.printf "  a 40-event trace from seed 7 carries %d faults@." n_faults;
  (* the known stale-TLB seed: finding + shrinking one counterexample *)
  let stats, cx =
    Fault.Chaos.run ~flush:false ~seed:2620 ~traces:1 tiny_layout
  in
  (match cx with
  | Some cx ->
      Format.printf
        "  stale-TLB witness (seed %d): %d -> %d events in %d shrink replays@."
        cx.Fault.Chaos.cx_seed
        (List.length cx.Fault.Chaos.cx_events)
        (List.length cx.Fault.Chaos.cx_shrunk)
        cx.Fault.Chaos.cx_evals
  | None ->
      Format.printf "  (stale-TLB witness not reproduced: %d traces clean)@."
        stats.Fault.Chaos.traces);
  [
    bench "chaos/trace-generate(40-events)" (fun () ->
        ignore (Fault.Chaos.events_for ~seed:7 ~len:40 tiny_layout));
    bench "chaos/trace-replay(40-events,with-faults)" (fun () ->
        ignore (Fault.Chaos.replay tiny_layout faulty));
    bench "chaos/trace-replay(40-events,fault-free)" (fun () ->
        ignore (Fault.Chaos.replay tiny_layout fault_free));
    bench "chaos/find+shrink(stale-tlb,seed-2620)" (fun () ->
        ignore (Fault.Chaos.run ~flush:false ~seed:2620 ~traces:1 tiny_layout));
    bench "chaos/mir-prim-faults(full-battery)" (fun () ->
        ignore (Fault.Mir_chaos.run tiny_layout));
  ]

(* ------------------------------------------------------------------ *)

let () =
  Format.printf "MIRVerif / HyperEnclave reproduction benchmarks@.";
  let t1 = table1 () in
  let f1 = fig1 () in
  let f2 = fig2 () in
  let f3 = fig3 () in
  let f4 = fig4 () in
  let f5 = fig5 () in
  let ab = ablations () in
  let ch = chaos () in
  header "Timings (OLS estimate per operation)";
  run_benchs ~name:"table1" t1;
  run_benchs ~name:"fig1" f1;
  run_benchs ~name:"fig2" f2;
  run_benchs ~name:"fig3" f3;
  run_benchs ~name:"fig4" f4;
  run_benchs ~name:"fig5" f5;
  run_benchs ~name:"ablations" ab;
  run_benchs ~name:"chaos" ch;
  Format.printf "@.done.@."

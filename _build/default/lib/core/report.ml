type failure = { case : string; reason : string }

type t = {
  name : string;
  total : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

let empty name = { name; total = 0; passed = 0; skipped = 0; failures = [] }
let ok r = r.failures = []
let add_pass r = { r with total = r.total + 1; passed = r.passed + 1 }
let add_skip r = { r with total = r.total + 1; skipped = r.skipped + 1 }

let add_failure r ~case ~reason =
  { r with total = r.total + 1; failures = r.failures @ [ { case; reason } ] }

let merge name rs =
  List.fold_left
    (fun acc r ->
      {
        acc with
        total = acc.total + r.total;
        passed = acc.passed + r.passed;
        skipped = acc.skipped + r.skipped;
        failures = acc.failures @ r.failures;
      })
    (empty name) rs

let pp fmt r =
  Format.fprintf fmt "%-40s %5d cases, %5d passed, %4d skipped, %3d failed"
    r.name r.total r.passed r.skipped (List.length r.failures);
  List.iteri
    (fun i f ->
      if i < 5 then Format.fprintf fmt "@,    FAIL [%s]: %s" f.case f.reason)
    r.failures;
  if List.length r.failures > 5 then
    Format.fprintf fmt "@,    ... and %d more failures" (List.length r.failures - 5)

let pp_summary fmt rs =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," pp r) rs;
  let all = merge "TOTAL" rs in
  Format.fprintf fmt "%a@]" pp all

let to_string r = Format.asprintf "@[<v>%a@]" pp r

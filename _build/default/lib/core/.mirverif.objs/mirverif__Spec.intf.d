lib/core/spec.mli: Mir

lib/core/report.ml: Format List

lib/core/invariant.mli: Report

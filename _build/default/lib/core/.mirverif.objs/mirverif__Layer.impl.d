lib/core/layer.ml: Array Format List Map Mir Printf Spec String

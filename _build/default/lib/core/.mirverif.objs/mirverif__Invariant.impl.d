lib/core/invariant.ml: List Printf Report

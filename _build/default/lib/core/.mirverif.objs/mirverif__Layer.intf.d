lib/core/layer.mli: Format Mir Spec

lib/core/spec.ml: Mir Result

lib/core/refine.mli: Mir Report Spec

lib/core/refine.ml: Format List Mir Option Printf Report Spec

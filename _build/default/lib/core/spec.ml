type 'abs t = {
  name : string;
  exec : 'abs -> 'abs Mir.Value.t list -> ('abs * 'abs Mir.Value.t, string) result;
}

let make name exec = { name; exec }

let pure name f =
  { name; exec = (fun abs args -> Result.map (fun v -> (abs, v)) (f args)) }

let to_prim spec = { Mir.Interp.prim_name = spec.name; prim_exec = spec.exec }
let apply spec abs args = spec.exec abs args

type 'abs t = {
  name : string;
  exports : 'abs Spec.t list;
  code : Mir.Syntax.body list;
}

let make ~name ~exports ~code = { name; exports; code }

type 'abs stack = 'abs t list

let find stack name = List.find_opt (fun l -> String.equal l.name name) stack

let below stack ~layer =
  let rec go acc = function
    | [] -> List.rev acc (* layer not found: treat as sitting on top *)
    | l :: _ when String.equal l.name layer -> List.rev acc
    | l :: rest -> go (l :: acc) rest
  in
  go [] stack

(* Later (higher) layers must shadow earlier ones; fold into a map. *)
module StrMap = Map.Make (String)

let overlay specs =
  List.fold_left (fun m (s : _ Spec.t) -> StrMap.add s.Spec.name s m) StrMap.empty specs
  |> StrMap.bindings |> List.map snd

let interface_below stack ~layer =
  overlay (List.concat_map (fun l -> l.exports) (below stack ~layer))

let env_for stack ~layer =
  let this =
    match find stack layer with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Layer.env_for: no layer %s" layer)
  in
  let prims = List.map Spec.to_prim (interface_below stack ~layer) in
  Mir.Interp.env ~prims (Mir.Syntax.program_of_bodies this.code)

let env_on_top stack =
  let prims =
    overlay (List.concat_map (fun l -> l.exports) stack) |> List.map Spec.to_prim
  in
  Mir.Interp.env ~prims (Mir.Syntax.program_of_bodies [])

let all_code stack = List.concat_map (fun l -> l.code) stack

let spec_names stack =
  List.concat_map (fun l -> List.map (fun (s : _ Spec.t) -> s.Spec.name) l.exports) stack

type stratification_issue = {
  layer : string;
  body : string;
  callee : string;
  detail : string;
}

let pp_stratification_issue fmt i =
  Format.fprintf fmt "layer %s, fn %s calls %s: %s" i.layer i.body i.callee i.detail

let calls_of_body (body : Mir.Syntax.body) =
  Array.to_list body.blocks
  |> List.filter_map (fun (blk : Mir.Syntax.block) ->
         match blk.term with
         | Mir.Syntax.Call { func; _ } -> Some func
         | Mir.Syntax.Goto _ | Mir.Syntax.Switch_int _ | Mir.Syntax.Return
         | Mir.Syntax.Unreachable | Mir.Syntax.Drop _ | Mir.Syntax.Assert _ ->
             None)

let check_stratified stack =
  let issues = ref [] in
  List.iter
    (fun l ->
      let local_names =
        List.map (fun (b : Mir.Syntax.body) -> b.Mir.Syntax.fname) l.code
      in
      let lower =
        List.map (fun (s : _ Spec.t) -> s.Spec.name) (interface_below stack ~layer:l.name)
      in
      List.iter
        (fun (body : Mir.Syntax.body) ->
          List.iter
            (fun callee ->
              let ok =
                List.exists (String.equal callee) local_names
                || List.exists (String.equal callee) lower
              in
              if not ok then
                issues :=
                  {
                    layer = l.name;
                    body = body.Mir.Syntax.fname;
                    callee;
                    detail = "not a same-layer body nor a lower-layer export";
                  }
                  :: !issues)
            (calls_of_body body))
        l.code)
    stack;
  List.rev !issues

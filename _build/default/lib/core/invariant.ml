type 'abs t = { name : string; holds : 'abs -> (unit, string) result }

let make name holds = { name; holds }

let of_pred name pred =
  { name; holds = (fun abs -> if pred abs then Ok () else Error name) }

let check_all invs abs =
  let rec go = function
    | [] -> Ok ()
    | inv :: rest -> (
        match inv.holds abs with
        | Ok () -> go rest
        | Error detail -> Error (Printf.sprintf "%s: %s" inv.name detail))
  in
  go invs

type 'abs step = { step_name : string; apply : 'abs -> ('abs, string) result }

let step step_name apply = { step_name; apply }

let preserved ~invariants ~steps ~states =
  List.fold_left
    (fun report (state_label, abs) ->
      match check_all invariants abs with
      | Error _ -> Report.add_skip report
      | Ok () ->
          List.fold_left
            (fun report st ->
              let case = Printf.sprintf "%s / %s" state_label st.step_name in
              match st.apply abs with
              | Error _ -> Report.add_skip report
              | Ok abs' -> (
                  match check_all invariants abs' with
                  | Ok () -> Report.add_pass report
                  | Error reason ->
                      Report.add_failure report ~case
                        ~reason:(Printf.sprintf "invariant broken after step: %s" reason)))
            report steps)
    (Report.empty "invariant preservation")
    states

let establishes ~invariants ~init =
  List.fold_left
    (fun report (label, abs) ->
      match check_all invariants abs with
      | Ok () -> Report.add_pass report
      | Error reason -> Report.add_failure report ~case:label ~reason)
    (Report.empty "invariant establishment")
    init

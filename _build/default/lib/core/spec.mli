(** Functional specifications.

    A specification describes a function's behaviour as a pure function
    on the abstract system state: [Args * AbsState -> Ret * AbsState]
    (paper Sec. 3.4).  Specifications play three roles:

    - the {e proof obligation} for the layer's own code (the code must
      refine its spec, checked by {!Refine});
    - the {e primitive} a higher layer's code runs against ({!to_prim}
      plugs the spec into the MIR interpreter, shadowing the body);
    - for the bottom (trusted) layer, the {e axiomatization} of
      hardware and library behaviour (paper Sec. 4.2).

    [Error msg] means the specification is undefined on that input —
    its precondition does not hold.  Functions that can fail for a
    caller-visible reason return an encoded error {e value} instead. *)

type 'abs t = {
  name : string;
  exec : 'abs -> 'abs Mir.Value.t list -> ('abs * 'abs Mir.Value.t, string) result;
}

val make :
  string ->
  ('abs -> 'abs Mir.Value.t list -> ('abs * 'abs Mir.Value.t, string) result) ->
  'abs t

val pure : string -> ('abs Mir.Value.t list -> ('abs Mir.Value.t, string) result) -> 'abs t
(** A specification that never changes the abstract state. *)

val to_prim : 'abs t -> 'abs Mir.Interp.prim

val apply :
  'abs t -> 'abs -> 'abs Mir.Value.t list -> ('abs * 'abs Mir.Value.t, string) result

(** State invariants and their preservation.

    The paper states the page-table invariants of Sec. 5.2 in Coq and
    proves every hypercall preserves them.  Here an invariant is an
    executable predicate with an explanation on failure, and
    {!preserved} checks the same statement over generated states and
    transition steps. *)

type 'abs t = { name : string; holds : 'abs -> (unit, string) result }

val make : string -> ('abs -> (unit, string) result) -> 'abs t

val of_pred : string -> ('abs -> bool) -> 'abs t
(** Failure message is just the invariant name. *)

val check_all : 'abs t list -> 'abs -> (unit, string) result
(** First violated invariant, rendered as ["name: detail"]. *)

(** A labelled state transition; [Error] means the step's precondition
    does not hold in that state (the step is not enabled). *)
type 'abs step = { step_name : string; apply : 'abs -> ('abs, string) result }

val step : string -> ('abs -> ('abs, string) result) -> 'abs step

val preserved :
  invariants:'abs t list ->
  steps:'abs step list ->
  states:(string * 'abs) list ->
  Report.t
(** For every state that satisfies all invariants and every enabled
    step from it, the post-state must satisfy all invariants.  States
    violating the invariants up front are skipped (they are outside the
    reachable set the theorem quantifies over); disabled steps are
    skipped. *)

val establishes :
  invariants:'abs t list -> init:(string * 'abs) list -> Report.t
(** Initial states must satisfy all invariants (the induction base). *)

(** Check reports.

    Every proof obligation of the paper becomes an executable check
    here; a report records how a batch of check instances fared.
    [skipped] counts generated cases outside the specification's
    precondition (the spec was undefined there, so nothing is claimed
    about the code). *)

type failure = { case : string; reason : string }

type t = {
  name : string;
  total : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

val empty : string -> t
val ok : t -> bool
val add_pass : t -> t
val add_skip : t -> t
val add_failure : t -> case:string -> reason:string -> t
val merge : string -> t list -> t
val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t list -> unit
val to_string : t -> string

lib/check/rng.mli: Mir

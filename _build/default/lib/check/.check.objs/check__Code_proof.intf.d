lib/check/code_proof.mli: Hyperenclave Mirverif

lib/check/rng.ml: Int64 List

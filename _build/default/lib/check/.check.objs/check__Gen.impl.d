lib/check/gen.ml: Absdata Array Epcm Geometry Hyperenclave Int64 Layout List Mir Phys_mem Principal Printf Rng Security State Transition

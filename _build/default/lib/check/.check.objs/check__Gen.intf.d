lib/check/gen.mli: Hyperenclave Rng Security

lib/check/code_proof.ml: Absdata Boot Enclave Flags Gen Geometry Hypercall Hyperenclave Int64 Layers Layout List Marshal_v Mem_spec Mir Mirverif Printf Pt_flat Pte String

(** Code-conformance checks for the 49 verified functions.

    For every function of the compiled memory module, builds
    {!Mirverif.Refine} cases — reachable abstract states crossed with
    argument batteries covering valid, boundary, and invalid inputs —
    and checks the MIR execution (lower layers replaced by their
    specifications) against the function's own specification.  This is
    the executable counterpart of the paper's per-function code proofs
    (Sec. 4.3). *)

val checks :
  ?seed:int -> Hyperenclave.Layout.t ->
  (string * Hyperenclave.Absdata.t Mirverif.Refine.check) list
(** [(layer, check)] pairs, one per function, bottom-up. *)

val run_layer : ?seed:int -> Hyperenclave.Layout.t -> string -> Mirverif.Report.t list
(** Run the checks of one layer. *)

val run_all : ?seed:int -> Hyperenclave.Layout.t -> (string * Mirverif.Report.t) list
(** Run everything, bottom-up; [(layer, per-function report)]. *)

val total_cases : (string * Mirverif.Report.t) list -> int * int * int * int
(** (total, passed, skipped, failed) over a result set. *)

(** Deterministic pseudo-random values (splitmix64).

    All generated check inputs derive from explicit seeds so every
    run — tests, the verification CLI, the benchmarks — sees the same
    state space and failures reproduce exactly. *)

type t

val make : int -> t
val next : t -> Mir.Word.t * t
val int_below : t -> int -> int * t
(** Uniform in [\[0, bound)]; [bound >= 1]. *)

val bool : t -> bool * t
val pick : t -> 'a list -> 'a * t
(** Raises [Invalid_argument] on an empty list. *)

val split : t -> t * t

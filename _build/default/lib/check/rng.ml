type t = int64

let golden = 0x9E3779B97F4A7C15L

let make seed = Int64.mul (Int64.of_int (seed + 1)) golden

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t =
  let t' = Int64.add t golden in
  (mix t', t')

let int_below t bound =
  if bound < 1 then invalid_arg "Rng.int_below: bound must be >= 1";
  let w, t = next t in
  (Int64.to_int (Int64.unsigned_rem w (Int64.of_int bound)), t)

let bool t =
  let w, t = next t in
  (Int64.equal (Int64.logand w 1L) 1L, t)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ ->
      let i, t = int_below t (List.length xs) in
      (List.nth xs i, t)

let split t =
  let a, t = next t in
  (mix a, t)

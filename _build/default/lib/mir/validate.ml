type issue = { in_function : string; detail : string }

let pp_issue fmt i = Format.fprintf fmt "%s: %s" i.in_function i.detail

module StrSet = Set.Make (String)

type ctx = {
  body : Syntax.body;
  declared : StrSet.t;
  temps : StrSet.t;
  mutable issues_rev : issue list;
}

let report ctx detail =
  ctx.issues_rev <- { in_function = ctx.body.Syntax.fname; detail } :: ctx.issues_rev

let check_var ctx what var =
  if not (StrSet.mem var ctx.declared) then
    report ctx (Printf.sprintf "%s uses undeclared variable %s" what var)

let check_place ctx what (p : Syntax.place) =
  check_var ctx what p.var;
  List.iter
    (fun elem ->
      match elem with
      | Syntax.Pindex v -> check_var ctx what v
      | Syntax.Deref | Syntax.Pfield _ | Syntax.Pconst_index _ | Syntax.Downcast _ -> ())
    p.elems

(* A Ref of a place is address-taking on the base variable only when no
   Deref occurs before any projection: [&x.f] takes x's address, while
   a ref through a leading deref, "& *p .f", only reuses an existing
   pointer. *)
let check_ref_target ctx (p : Syntax.place) =
  let derefs_first =
    match p.elems with Syntax.Deref :: _ -> true | _ -> false
  in
  if (not derefs_first) && StrSet.mem p.var ctx.temps then
    report ctx
      (Printf.sprintf
         "address of temporary %s taken; the translator must classify it as local"
         p.var)

let check_operand ctx what = function
  | Syntax.Copy p | Syntax.Move p -> check_place ctx what p
  | Syntax.Const _ -> ()

let check_rvalue ctx what = function
  | Syntax.Use op | Syntax.Repeat (op, _) | Syntax.Cast (op, _) | Syntax.Unary (_, op)
    ->
      check_operand ctx what op
  | Syntax.Ref p | Syntax.Address_of p ->
      check_place ctx what p;
      check_ref_target ctx p
  | Syntax.Len p | Syntax.Discriminant p -> check_place ctx what p
  | Syntax.Binary (_, a, b) | Syntax.Checked_binary (_, a, b) ->
      check_operand ctx what a;
      check_operand ctx what b
  | Syntax.Aggregate (_, ops) -> List.iter (check_operand ctx what) ops

let check_label ctx what label =
  if label < 0 || label >= Array.length ctx.body.Syntax.blocks then
    report ctx (Printf.sprintf "%s targets undefined block bb%d" what label)

let check_statement ctx i j stmt =
  let what = Printf.sprintf "bb%d[%d]" i j in
  match stmt with
  | Syntax.Assign (p, rv) ->
      check_place ctx what p;
      check_rvalue ctx what rv
  | Syntax.Set_discriminant (p, _) -> check_place ctx what p
  | Syntax.Storage_live v | Syntax.Storage_dead v -> check_var ctx what v
  | Syntax.Nop -> ()

let check_terminator ctx callf i term =
  let what = Printf.sprintf "bb%d terminator" i in
  match term with
  | Syntax.Goto l -> check_label ctx what l
  | Syntax.Switch_int (op, cases, otherwise) ->
      check_operand ctx what op;
      List.iter (fun (_, l) -> check_label ctx what l) cases;
      check_label ctx what otherwise
  | Syntax.Return | Syntax.Unreachable -> ()
  | Syntax.Drop (p, l) ->
      check_place ctx what p;
      check_label ctx what l
  | Syntax.Call { dest; func; args; target } ->
      check_place ctx what dest;
      List.iter (check_operand ctx what) args;
      Option.iter (check_label ctx what) target;
      callf ctx what func
  | Syntax.Assert { cond; target; _ } ->
      check_operand ctx what cond;
      check_label ctx what target

let build_ctx (body : Syntax.body) =
  let declared =
    List.fold_left (fun s d -> StrSet.add d.Syntax.lname s) StrSet.empty body.locals
  in
  let temps =
    List.fold_left
      (fun s d ->
        match d.Syntax.lkind with
        | Syntax.Ktemp -> StrSet.add d.Syntax.lname s
        | Syntax.Klocal -> s)
      StrSet.empty body.locals
  in
  { body; declared; temps; issues_rev = [] }

let check_body_with callf (body : Syntax.body) =
  let ctx = build_ctx body in
  (* duplicate declarations *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let n = d.Syntax.lname in
      if Hashtbl.mem seen n then report ctx (Printf.sprintf "duplicate declaration of %s" n)
      else Hashtbl.add seen n ())
    body.locals;
  List.iter
    (fun p ->
      if not (StrSet.mem p ctx.declared) then
        report ctx (Printf.sprintf "parameter %s not declared" p))
    body.params;
  if not (StrSet.mem Syntax.return_var ctx.declared) then
    report ctx "return slot _0 not declared";
  if Array.length body.blocks = 0 then report ctx "body has no blocks";
  Array.iteri
    (fun i (blk : Syntax.block) ->
      List.iteri (fun j s -> check_statement ctx i j s) blk.stmts;
      check_terminator ctx callf i blk.term)
    body.blocks;
  List.rev ctx.issues_rev

let check_body body = check_body_with (fun _ _ _ -> ()) body

let check_program ?(primitives = []) prog =
  let prims = StrSet.of_list primitives in
  let callf ctx what func =
    if (not (StrSet.mem func prims)) && Option.is_none (Syntax.find_body prog func)
    then
      report ctx
        (Printf.sprintf "%s calls %s, which is neither a body nor a primitive" what func)
  in
  Syntax.fold_bodies
    (fun _ body acc -> acc @ check_body_with callf body)
    prog []

(** MIRlight program syntax.

    Programs are control-flow graphs: each labelled basic block is a
    list of statements followed by one terminator (paper Sec. 3.1).
    Variables are split by the translator into {e locals} (address
    taken, allocated in object memory) and {e temps} (kept in a
    per-call temporary environment, like LLVM's mem2reg) — see
    {!local_kind}. *)

type label = int
(** Basic-block label; the entry block is label [0] ("bb0"). *)

(** One step of a place expression.  [Downcast] selects an enum variant
    before projecting its payload fields; in the object view it only
    asserts the discriminant. *)
type place_elem =
  | Deref
  | Pfield of int
  | Pindex of string  (** index held in a variable *)
  | Pconst_index of int
  | Downcast of int

type place = { var : string; elems : place_elem list }

type constant =
  | Cint of Word.t * Ty.int_ty
  | Cbool of bool
  | Cunit
  | Cfn of string  (** function item (zero-sized); used by [Call] via operand *)

type operand = Copy of place | Move of place | Const of constant

type bin_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type un_op = Not | Neg

type aggregate_kind =
  | Agg_tuple
  | Agg_struct of string
  | Agg_variant of string * int  (** enum name, variant index *)
  | Agg_array

type rvalue =
  | Use of operand
  | Repeat of operand * int
  | Ref of place
  | Address_of of place
  | Len of place
  | Cast of operand * Ty.int_ty
  | Binary of bin_op * operand * operand
  | Checked_binary of bin_op * operand * operand
      (** returns [(result, overflowed)] as a 2-tuple *)
  | Unary of un_op * operand
  | Discriminant of place
  | Aggregate of aggregate_kind * operand list

type statement =
  | Assign of place * rvalue
  | Set_discriminant of place * int
  | Storage_live of string
  | Storage_dead of string
  | Nop

type terminator =
  | Goto of label
  | Switch_int of operand * (Word.t * label) list * label
      (** value cases, otherwise target *)
  | Return
  | Unreachable
  | Drop of place * label
      (** deallocation is a no-op in MIRlight (paper Sec. 3.2) *)
  | Call of { dest : place; func : string; args : operand list; target : label option }
  | Assert of { cond : operand; expected : bool; msg : string; target : label }

type block = { stmts : statement list; term : terminator }

(** Address-taken variables live in object memory; all others live in
    the temporary environment and induce no memory side effects
    (paper Sec. 3.2, "Lifting Local Variables"). *)
type local_kind = Klocal | Ktemp

type local_decl = { lname : string; lty : Ty.t; lkind : local_kind }

type body = {
  fname : string;
  params : string list;  (** in order; each must appear in [locals] *)
  locals : local_decl list;  (** includes params and the return slot ["_0"] *)
  blocks : block array;  (** indexed by label; entry is [0] *)
}

type program
(** A set of function bodies, keyed by name. *)

val return_var : string
(** The name of the return slot, ["_0"]. *)

val program_of_bodies : body list -> program
val find_body : program -> string -> body option
val body_names : program -> string list
val fold_bodies : (string -> body -> 'a -> 'a) -> program -> 'a -> 'a
val add_body : program -> body -> program
val union : program -> program -> program
(** Right-biased union of two programs. *)

val local_kind_of : body -> string -> local_kind option
val place_of_var : string -> place

val statement_count : body -> int
val block_count : body -> int

val mir_line_count : body -> int
(** Printable-line count of the body — one line per statement,
    terminator, block header and declaration — used for the Table 1
    "lines of MIR" statistic. *)

val program_line_count : program -> int

(** Runtime values: the object view of memory.

    Structs and enums are values — an integer discriminant plus a field
    list — not blocks of contiguous bytes (paper Sec. 3.2).  The value
    type is parameterized by ['abs], the CCAL abstract machine state,
    because {e trusted pointers} (paper Sec. 3.4, case 2) carry
    getter/setter functions over that state.

    The three pointer kinds of Fig. 4:
    - {!pointer.Concrete} — a path into object memory.  Used when a
      caller passes a pointer to its own data down to a lower layer
      (case 1).
    - {!pointer.Trusted} — a getter/setter pair over the abstract state.
      Returned by bottom-layer primitives such as [phys_to_ptr]; gives a
      load/store abstraction over the flat physical-memory array without
      rewriting the code (case 2).
    - {!pointer.Rdata} — an opaque handle (identifier + indices).  The
      semantics provide {e no} way to read or write through it, so a
      higher layer can only hand it back to the layer that forged it
      (case 3); this is how [&self] pointers preserve encapsulation. *)

type 'abs t =
  | Int of Word.t * Ty.int_ty
  | Bool of bool
  | Unit
  | Struct of int * 'abs t list
      (** [(discriminant, fields)]; discriminant is [0] for structs and
          tuples, the variant index for enums *)
  | Arr of 'abs t array
      (** array aggregate; treated persistently (updates copy) *)
  | Ptr of 'abs pointer

and 'abs pointer =
  | Concrete of Path.t
  | Trusted of 'abs trusted
  | Rdata of rdata

and 'abs trusted = {
  tp_name : string;  (** for printing and structural comparison *)
  tp_load : 'abs -> ('abs t, string) result;
  tp_store : 'abs -> 'abs t -> ('abs, string) result;
}

and rdata = {
  rd_layer : string;  (** the layer that owns the pointee *)
  rd_name : string;
  rd_indices : int list;
}

val unit : 'abs t
val bool : bool -> 'abs t
val int : Ty.int_ty -> int -> 'abs t
val word : Ty.int_ty -> Word.t -> 'abs t
val u64 : Word.t -> 'abs t
val usize : int -> 'abs t
val tuple : 'abs t list -> 'abs t
val strukt : 'abs t list -> 'abs t
val variant : int -> 'abs t list -> 'abs t
val ptr_path : Path.t -> 'abs t
val ptr_rdata : layer:string -> name:string -> int list -> 'abs t

val as_word : 'abs t -> (Word.t * Ty.int_ty, string) result
val as_bool : 'abs t -> (bool, string) result
val as_ptr : 'abs t -> ('abs pointer, string) result
val as_fields : 'abs t -> (int * 'abs t list, string) result
val discriminant : 'abs t -> (int, string) result

val project : 'abs t -> Path.proj -> ('abs t, string) result
(** [project v pr] reads one field/index of an aggregate value. *)

val project_many : 'abs t -> Path.proj list -> ('abs t, string) result

val update : 'abs t -> Path.proj list -> 'abs t -> ('abs t, string) result
(** [update v projs sub] functionally replaces the sub-value of [v] at
    [projs] with [sub]. *)

val retag : 'a t -> ('b t, string) result
(** Rebuild a value at a different abstract-state type.  Succeeds for
    all data values (including concrete and RData pointers); fails on
    trusted pointers, whose getter/setter closures are tied to one
    abstract state type.  Used when the same argument list feeds two
    specifications over different abstract states. *)

val equal : 'abs t -> 'abs t -> bool
(** Structural equality.  Trusted pointers compare by [tp_name]
    (closures are not comparable); this suffices for refinement checks,
    which never need to distinguish two trusted views of the same
    primitive. *)

val pp : Format.formatter -> 'abs t -> unit
val to_string : 'abs t -> string

type pending_block = {
  mutable stmts_rev : Syntax.statement list;
  mutable term : Syntax.terminator option;
}

type t = {
  name : string;
  params : string list;
  mutable locals_rev : Syntax.local_decl list;
  mutable blocks : pending_block array;
  mutable cur : Syntax.label;
  mutable fresh : int;
}

let new_block () = { stmts_rev = []; term = None }

let create ~name ~params ~ret_ty =
  let ret_decl =
    { Syntax.lname = Syntax.return_var; lty = ret_ty; lkind = Syntax.Ktemp }
  in
  let param_decls =
    List.map
      (fun (p, ty, kind) -> { Syntax.lname = p; lty = ty; lkind = kind })
      params
  in
  {
    name;
    params = List.map (fun (p, _, _) -> p) params;
    locals_rev = List.rev (ret_decl :: param_decls);
    blocks = [| new_block () |];
    cur = 0;
    fresh = 0;
  }

let declare_return_local b =
  b.locals_rev <-
    List.map
      (fun d ->
        if String.equal d.Syntax.lname Syntax.return_var then
          { d with Syntax.lkind = Syntax.Klocal }
        else d)
      b.locals_rev

let declare b kind ?name ty =
  let name =
    match name with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "_t%d" b.fresh in
        b.fresh <- b.fresh + 1;
        n
  in
  b.locals_rev <- { Syntax.lname = name; lty = ty; lkind = kind } :: b.locals_rev;
  name

let temp b ?name ty = declare b Syntax.Ktemp ?name ty
let local b ?name ty = declare b Syntax.Klocal ?name ty

let fresh_block b =
  let label = Array.length b.blocks in
  b.blocks <- Array.append b.blocks [| new_block () |];
  label

let current b = b.cur

let switch_to b label =
  if label < 0 || label >= Array.length b.blocks then
    invalid_arg (Printf.sprintf "Builder.switch_to: unknown block bb%d" label);
  b.cur <- label

let push b stmt =
  let blk = b.blocks.(b.cur) in
  (match blk.term with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Builder.push: block bb%d of %s already terminated" b.cur b.name)
  | None -> ());
  blk.stmts_rev <- stmt :: blk.stmts_rev

let assign b place rv = push b (Syntax.Assign (place, rv))
let assign_var b var rv = assign b (Syntax.place_of_var var) rv

let terminate b term =
  let blk = b.blocks.(b.cur) in
  match blk.term with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Builder.terminate: block bb%d of %s already terminated"
           b.cur b.name)
  | None -> blk.term <- Some term

let finish b =
  let blocks =
    Array.mapi
      (fun i blk ->
        match blk.term with
        | None ->
            invalid_arg
              (Printf.sprintf "Builder.finish: block bb%d of %s not terminated" i b.name)
        | Some term -> { Syntax.stmts = List.rev blk.stmts_rev; term })
      b.blocks
  in
  {
    Syntax.fname = b.name;
    params = b.params;
    locals = List.rev b.locals_rev;
    blocks;
  }

let pvar var = Syntax.place_of_var var

let extend (p : Syntax.place) elem = { p with Syntax.elems = p.Syntax.elems @ [ elem ] }

let pfield p i = extend p (Syntax.Pfield i)
let pindex p var = extend p (Syntax.Pindex var)
let pconst_index p i = extend p (Syntax.Pconst_index i)
let pderef p = extend p Syntax.Deref
let pdowncast p d = extend p (Syntax.Downcast d)

let copy var = Syntax.Copy (pvar var)
let copy_place p = Syntax.Copy p
let move var = Syntax.Move (pvar var)
let cword ity w = Syntax.Const (Syntax.Cint (Word.norm (Ty.width ity) w, ity))
let cint ity i = cword ity (Word.of_int (Ty.width ity) i)
let cu64 i = cint Ty.U64 i
let cusize i = cint Ty.Usize i
let cbool bv = Syntax.Const (Syntax.Cbool bv)
let cunit = Syntax.Const Syntax.Cunit

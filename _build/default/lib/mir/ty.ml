type int_ty = U8 | U16 | U32 | U64 | Usize | I32 | I64

let width = function
  | U8 -> Word.W8
  | U16 -> Word.W16
  | U32 | I32 -> Word.W32
  | U64 | Usize | I64 -> Word.W64

let signed = function I32 | I64 -> true | U8 | U16 | U32 | U64 | Usize -> false

let int_ty_equal (a : int_ty) (b : int_ty) = a = b

let pp_int_ty fmt ty =
  Format.pp_print_string fmt
    (match ty with
    | U8 -> "u8"
    | U16 -> "u16"
    | U32 -> "u32"
    | U64 -> "u64"
    | Usize -> "usize"
    | I32 -> "i32"
    | I64 -> "i64")

type t =
  | Int of int_ty
  | Bool
  | Unit
  | Tuple of t list
  | Adt of string
  | Ref of t
  | Array of t * int
  | Raw of t
  | Opaque of string

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> int_ty_equal x y
  | Bool, Bool | Unit, Unit -> true
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Adt x, Adt y | Opaque x, Opaque y -> String.equal x y
  | Ref x, Ref y | Raw x, Raw y -> equal x y
  | Array (x, n), Array (y, m) -> n = m && equal x y
  | (Int _ | Bool | Unit | Tuple _ | Adt _ | Ref _ | Array _ | Raw _ | Opaque _), _
    ->
      false

let rec pp fmt = function
  | Int ity -> pp_int_ty fmt ity
  | Bool -> Format.pp_print_string fmt "bool"
  | Unit -> Format.pp_print_string fmt "()"
  | Tuple ts ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
        ts
  | Adt name -> Format.pp_print_string fmt name
  | Ref t -> Format.fprintf fmt "&%a" pp t
  | Array (t, n) -> Format.fprintf fmt "[%a; %d]" pp t n
  | Raw t -> Format.fprintf fmt "*mut %a" pp t
  | Opaque name -> Format.fprintf fmt "opaque<%s>" name

let to_string t = Format.asprintf "%a" pp t

(** Path-based addresses.

    MIRlight abandons the flat-array-of-bytes view of memory: an
    address is a {e path} — a base object plus a list of projections
    (paper Sec. 3.2, "GlobalPath IDENT_foo [OFFSET_bar 1]").  Proofs
    (here: checks) therefore never reason about object layout, and an
    assignment only changes the value reachable through the assigned
    path. *)

(** The root object a path starts from. *)
type base =
  | Global of string  (** a global/static variable *)
  | Local of int * string
      (** [Local (frame, var)]: variable [var] of the call-frame
          instance [frame].  Frames are never deallocated, mirroring the
          paper's no-free semantics, so frame ids are globally unique. *)

(** One projection step. *)
type proj =
  | Field of int  (** field of a struct / tuple / enum payload *)
  | Index of int  (** element of an array aggregate *)

type t = { base : base; projs : proj list }

val global : string -> t
val local : frame:int -> string -> t
val extend : t -> proj -> t
(** [extend p pr] appends projection [pr] (at the end). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_prefix : t -> t -> bool
(** [is_prefix p q] holds when [q] addresses a sub-object of (or the
    same object as) [p]; used by the frame condition on assignment. *)

val disjoint : t -> t -> bool
(** Neither path is a prefix of the other: updates through one cannot be
    seen through the other. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Base : sig
  type t = base

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

open Format

let pp_place fmt (p : Syntax.place) =
  (* Derefs print as prefix stars, other projections as suffixes. *)
  let derefs = List.length (List.filter (fun e -> e = Syntax.Deref) p.elems) in
  for _ = 1 to derefs do
    pp_print_string fmt "*"
  done;
  pp_print_string fmt p.var;
  List.iter
    (fun elem ->
      match elem with
      | Syntax.Deref -> ()
      | Syntax.Pfield i -> fprintf fmt ".%d" i
      | Syntax.Pindex v -> fprintf fmt "[%s]" v
      | Syntax.Pconst_index i -> fprintf fmt "[%d]" i
      | Syntax.Downcast d -> fprintf fmt " as variant#%d" d)
    p.elems

let pp_constant fmt = function
  | Syntax.Cint (w, ity) -> fprintf fmt "const %a_%a" Word.pp_dec w Ty.pp_int_ty ity
  | Syntax.Cbool b -> fprintf fmt "const %b" b
  | Syntax.Cunit -> pp_print_string fmt "const ()"
  | Syntax.Cfn f -> fprintf fmt "const fn %s" f

let pp_operand fmt = function
  | Syntax.Copy p -> pp_place fmt p
  | Syntax.Move p -> fprintf fmt "move %a" pp_place p
  | Syntax.Const c -> pp_constant fmt c

let bin_op_symbol = function
  | Syntax.Add -> "Add"
  | Syntax.Sub -> "Sub"
  | Syntax.Mul -> "Mul"
  | Syntax.Div -> "Div"
  | Syntax.Rem -> "Rem"
  | Syntax.Bit_and -> "BitAnd"
  | Syntax.Bit_or -> "BitOr"
  | Syntax.Bit_xor -> "BitXor"
  | Syntax.Shl -> "Shl"
  | Syntax.Shr -> "Shr"
  | Syntax.Eq -> "Eq"
  | Syntax.Ne -> "Ne"
  | Syntax.Lt -> "Lt"
  | Syntax.Le -> "Le"
  | Syntax.Gt -> "Gt"
  | Syntax.Ge -> "Ge"

let pp_rvalue fmt = function
  | Syntax.Use op -> pp_operand fmt op
  | Syntax.Repeat (op, n) -> fprintf fmt "[%a; %d]" pp_operand op n
  | Syntax.Ref p -> fprintf fmt "&mut %a" pp_place p
  | Syntax.Address_of p -> fprintf fmt "&raw mut %a" pp_place p
  | Syntax.Len p -> fprintf fmt "Len(%a)" pp_place p
  | Syntax.Cast (op, ity) -> fprintf fmt "%a as %a" pp_operand op Ty.pp_int_ty ity
  | Syntax.Binary (op, a, b) ->
      fprintf fmt "%s(%a, %a)" (bin_op_symbol op) pp_operand a pp_operand b
  | Syntax.Checked_binary (op, a, b) ->
      fprintf fmt "Checked%s(%a, %a)" (bin_op_symbol op) pp_operand a pp_operand b
  | Syntax.Unary (Syntax.Not, a) -> fprintf fmt "Not(%a)" pp_operand a
  | Syntax.Unary (Syntax.Neg, a) -> fprintf fmt "Neg(%a)" pp_operand a
  | Syntax.Discriminant p -> fprintf fmt "discriminant(%a)" pp_place p
  | Syntax.Aggregate (kind, ops) ->
      let pp_ops fmt' =
        pp_print_list ~pp_sep:(fun f () -> fprintf f ", ") pp_operand fmt'
      in
      (match kind with
      | Syntax.Agg_tuple -> fprintf fmt "(%a)" pp_ops ops
      | Syntax.Agg_struct name -> fprintf fmt "%s { %a }" name pp_ops ops
      | Syntax.Agg_variant (name, d) -> fprintf fmt "%s::variant#%d(%a)" name d pp_ops ops
      | Syntax.Agg_array -> fprintf fmt "[%a]" pp_ops ops)

let pp_statement fmt = function
  | Syntax.Assign (p, rv) -> fprintf fmt "%a = %a;" pp_place p pp_rvalue rv
  | Syntax.Set_discriminant (p, d) ->
      fprintf fmt "discriminant(%a) = %d;" pp_place p d
  | Syntax.Storage_live v -> fprintf fmt "StorageLive(%s);" v
  | Syntax.Storage_dead v -> fprintf fmt "StorageDead(%s);" v
  | Syntax.Nop -> pp_print_string fmt "nop;"

let pp_terminator fmt = function
  | Syntax.Goto l -> fprintf fmt "goto -> bb%d;" l
  | Syntax.Switch_int (op, cases, otherwise) ->
      fprintf fmt "switchInt(%a) -> [%a, otherwise: bb%d];" pp_operand op
        (pp_print_list
           ~pp_sep:(fun f () -> fprintf f ", ")
           (fun f (w, l) -> fprintf f "%a: bb%d" Word.pp_dec w l))
        cases otherwise
  | Syntax.Return -> pp_print_string fmt "return;"
  | Syntax.Unreachable -> pp_print_string fmt "unreachable;"
  | Syntax.Drop (p, l) -> fprintf fmt "drop(%a) -> bb%d;" pp_place p l
  | Syntax.Call { dest; func; args; target } ->
      fprintf fmt "%a = %s(%a)" pp_place dest func
        (pp_print_list ~pp_sep:(fun f () -> fprintf f ", ") pp_operand)
        args;
      (match target with
      | Some l -> fprintf fmt " -> bb%d;" l
      | None -> fprintf fmt " -> diverge;")
  | Syntax.Assert { cond; expected; msg; target } ->
      fprintf fmt "assert(%a == %b, %S) -> bb%d;" pp_operand cond expected msg target

let pp_local_decl fmt (d : Syntax.local_decl) =
  let kind = match d.lkind with Syntax.Klocal -> "local" | Syntax.Ktemp -> "temp" in
  fprintf fmt "let %s %s: %a;" kind d.lname Ty.pp d.lty

let pp_body fmt (b : Syntax.body) =
  fprintf fmt "@[<v>fn %s(%a) {@;<0 2>@[<v>" b.fname
    (pp_print_list ~pp_sep:(fun f () -> fprintf f ", ") pp_print_string)
    b.params;
  List.iter (fun d -> fprintf fmt "%a@," pp_local_decl d) b.locals;
  Array.iteri
    (fun i (blk : Syntax.block) ->
      fprintf fmt "@,bb%d: {@;<0 2>@[<v>" i;
      List.iter (fun s -> fprintf fmt "%a@," pp_statement s) blk.stmts;
      fprintf fmt "%a@]@,}" pp_terminator blk.term)
    b.blocks;
  fprintf fmt "@]@,}@]"

let pp_program fmt prog =
  let first = ref true in
  Syntax.fold_bodies
    (fun _ body () ->
      if !first then first := false else pp_print_newline fmt ();
      pp_body fmt body;
      pp_print_newline fmt ())
    prog ()

let body_to_string b = asprintf "%a" pp_body b
let program_to_string p = asprintf "%a" pp_program p

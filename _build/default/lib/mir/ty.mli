(** MIRlight types.

    By the time Rust code reaches MIR the compiler has fully
    type-checked the program and resolved every trait call, so the
    operational semantics do not depend on a type system (paper
    Sec. 3.1).  We keep a small type language anyway: integer widths
    drive arithmetic normalization, and declared types document the
    layer interfaces and let {!Mir.Validate} catch gross shape errors in
    hand-written or generated MIR. *)

(** Integer types of the Rust subset used by HyperEnclave. *)
type int_ty = U8 | U16 | U32 | U64 | Usize | I32 | I64

val width : int_ty -> Word.width
val signed : int_ty -> bool
val int_ty_equal : int_ty -> int_ty -> bool
val pp_int_ty : Format.formatter -> int_ty -> unit

type t =
  | Int of int_ty
  | Bool
  | Unit
  | Tuple of t list
  | Adt of string  (** a named struct or enum; layout is nominal *)
  | Ref of t  (** MIR references are pointers; mutability is erased *)
  | Array of t * int
  | Raw of t  (** raw pointer, [ *const T] / [ *mut T] *)
  | Opaque of string
      (** a type owned by a lower layer, only usable through RData
          handles (paper Sec. 3.4, pointer case 3) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

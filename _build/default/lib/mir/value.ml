type 'abs t =
  | Int of Word.t * Ty.int_ty
  | Bool of bool
  | Unit
  | Struct of int * 'abs t list
  | Arr of 'abs t array
  | Ptr of 'abs pointer

and 'abs pointer = Concrete of Path.t | Trusted of 'abs trusted | Rdata of rdata

and 'abs trusted = {
  tp_name : string;
  tp_load : 'abs -> ('abs t, string) result;
  tp_store : 'abs -> 'abs t -> ('abs, string) result;
}

and rdata = { rd_layer : string; rd_name : string; rd_indices : int list }

let unit = Unit
let bool b = Bool b
let word ity w = Int (Word.norm (Ty.width ity) w, ity)
let int ity i = word ity (Word.of_int (Ty.width ity) i)
let u64 w = word Ty.U64 w
let usize i = int Ty.Usize i
let tuple fields = Struct (0, fields)
let strukt fields = Struct (0, fields)
let variant d fields = Struct (d, fields)
let ptr_path p = Ptr (Concrete p)

let ptr_rdata ~layer ~name indices =
  Ptr (Rdata { rd_layer = layer; rd_name = name; rd_indices = indices })

let describe = function
  | Int _ -> "int"
  | Bool _ -> "bool"
  | Unit -> "unit"
  | Struct _ -> "struct"
  | Arr _ -> "array"
  | Ptr _ -> "pointer"

let as_word = function
  | Int (w, ity) -> Ok (w, ity)
  | v -> Error (Printf.sprintf "expected integer value, got %s" (describe v))

let as_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool value, got %s" (describe v))

let as_ptr = function
  | Ptr p -> Ok p
  | v -> Error (Printf.sprintf "expected pointer value, got %s" (describe v))

let as_fields = function
  | Struct (d, fs) -> Ok (d, fs)
  | v -> Error (Printf.sprintf "expected struct/enum value, got %s" (describe v))

let discriminant = function
  | Struct (d, _) -> Ok d
  | v -> Error (Printf.sprintf "discriminant of non-aggregate %s" (describe v))

let project v pr =
  match (v, pr) with
  | Struct (_, fields), Path.Field i -> (
      match List.nth_opt fields i with
      | Some f -> Ok f
      | None ->
          Error
            (Printf.sprintf "field %d out of bounds (aggregate has %d fields)" i
               (List.length fields)))
  | Arr elems, Path.Index i ->
      if i >= 0 && i < Array.length elems then Ok elems.(i)
      else Error (Printf.sprintf "index %d out of bounds (array length %d)" i (Array.length elems))
  | Struct _, Path.Index i ->
      Error (Printf.sprintf "indexing a struct with [%d]" i)
  | Arr _, Path.Field i -> Error (Printf.sprintf "field .%d of an array" i)
  | (Int _ | Bool _ | Unit | Ptr _), _ ->
      Error (Printf.sprintf "projection from scalar %s" (describe v))

let rec project_many v = function
  | [] -> Ok v
  | pr :: rest -> (
      match project v pr with Ok v' -> project_many v' rest | Error _ as e -> e)

let rec update v projs sub =
  match projs with
  | [] -> Ok sub
  | pr :: rest -> (
      match (v, pr) with
      | Struct (d, fields), Path.Field i -> (
          match List.nth_opt fields i with
          | None ->
              Error
                (Printf.sprintf "field %d out of bounds in update (%d fields)" i
                   (List.length fields))
          | Some old -> (
              match update old rest sub with
              | Error _ as e -> e
              | Ok repl ->
                  let fields' = List.mapi (fun j f -> if j = i then repl else f) fields in
                  Ok (Struct (d, fields'))))
      | Arr elems, Path.Index i ->
          if i < 0 || i >= Array.length elems then
            Error (Printf.sprintf "index %d out of bounds in update (length %d)" i (Array.length elems))
          else (
            match update elems.(i) rest sub with
            | Error _ as e -> e
            | Ok repl ->
                let elems' = Array.copy elems in
                elems'.(i) <- repl;
                Ok (Arr elems'))
      | _, _ ->
          Error (Printf.sprintf "update projection into %s" (describe v)))

let rec retag : 'a 'b. 'a t -> ('b t, string) result = function
  | Int (w, ity) -> Ok (Int (w, ity))
  | Bool b -> Ok (Bool b)
  | Unit -> Ok Unit
  | Struct (d, fields) ->
      let rec go acc = function
        | [] -> Ok (Struct (d, List.rev acc))
        | f :: rest -> (
            match retag f with Error _ as e -> e | Ok f' -> go (f' :: acc) rest)
      in
      go [] fields
  | Arr elems ->
      let out = Array.make (Array.length elems) Unit in
      let rec go i =
        if i >= Array.length elems then Ok (Arr out)
        else
          match retag elems.(i) with
          | Error _ as e -> e
          | Ok v ->
              out.(i) <- v;
              go (i + 1)
      in
      go 0
  | Ptr (Concrete p) -> Ok (Ptr (Concrete p))
  | Ptr (Rdata r) -> Ok (Ptr (Rdata r))
  | Ptr (Trusted t) ->
      Error (Printf.sprintf "cannot retag trusted pointer %s" t.tp_name)

let pointer_equal pa pb =
  match (pa, pb) with
  | Concrete a, Concrete b -> Path.equal a b
  | Trusted a, Trusted b -> String.equal a.tp_name b.tp_name
  | Rdata a, Rdata b ->
      String.equal a.rd_layer b.rd_layer
      && String.equal a.rd_name b.rd_name
      && List.equal Int.equal a.rd_indices b.rd_indices
  | (Concrete _ | Trusted _ | Rdata _), _ -> false

let rec equal a b =
  match (a, b) with
  | Int (x, tx), Int (y, ty) -> Word.equal x y && Ty.int_ty_equal tx ty
  | Bool x, Bool y -> Bool.equal x y
  | Unit, Unit -> true
  | Struct (d, xs), Struct (e, ys) ->
      d = e && List.length xs = List.length ys && List.for_all2 equal xs ys
  | Arr xs, Arr ys ->
      Array.length xs = Array.length ys
      && (let n = Array.length xs in
          let rec go i = i >= n || (equal xs.(i) ys.(i) && go (i + 1)) in
          go 0)
  | Ptr x, Ptr y -> pointer_equal x y
  | (Int _ | Bool _ | Unit | Struct _ | Arr _ | Ptr _), _ -> false

let rec pp fmt = function
  | Int (w, ity) -> Format.fprintf fmt "%a_%a" Word.pp w Ty.pp_int_ty ity
  | Bool b -> Format.pp_print_bool fmt b
  | Unit -> Format.pp_print_string fmt "()"
  | Struct (0, fields) -> Format.fprintf fmt "{%a}" pp_fields fields
  | Struct (d, fields) -> Format.fprintf fmt "#%d{%a}" d pp_fields fields
  | Arr elems ->
      Format.fprintf fmt "[|%a|]" pp_fields (Array.to_list elems)
  | Ptr (Concrete p) -> Format.fprintf fmt "&%a" Path.pp p
  | Ptr (Trusted t) -> Format.fprintf fmt "&trusted<%s>" t.tp_name
  | Ptr (Rdata r) ->
      Format.fprintf fmt "&rdata<%s.%s%a>" r.rd_layer r.rd_name
        (fun f ixs -> List.iter (Format.fprintf f "[%d]") ixs)
        r.rd_indices

and pp_fields fmt fields =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f ", ")
    pp fmt fields

let to_string v = Format.asprintf "%a" pp v

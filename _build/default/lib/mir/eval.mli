(** Pure evaluation of MIRlight operators.

    These rules reuse CompCert-style machine arithmetic (paper
    Sec. 3.2): binary operations normalize to the width of their
    (shared) integer type, division by zero and shift-out-of-range are
    runtime faults, and checked operations additionally report
    overflow. *)

val constant : Syntax.constant -> 'abs Value.t

val binary :
  Syntax.bin_op -> 'abs Value.t -> 'abs Value.t -> ('abs Value.t, string) result

val checked_binary :
  Syntax.bin_op -> 'abs Value.t -> 'abs Value.t -> ('abs Value.t, string) result
(** Returns the 2-tuple [(result, overflowed)]. *)

val unary : Syntax.un_op -> 'abs Value.t -> ('abs Value.t, string) result

val cast : 'abs Value.t -> Ty.int_ty -> ('abs Value.t, string) result
(** Integer-to-integer cast (truncating); also accepts [bool] sources
    like MIR's [as] on [bool]. *)

val switch_key : 'abs Value.t -> (Word.t, string) result
(** The integer a [SwitchInt] discriminates on; [bool] maps to 0/1. *)

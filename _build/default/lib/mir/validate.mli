(** Static well-formedness of MIRlight bodies.

    rustc guarantees these properties for generated MIR; we re-check
    them because bodies here also come from the Rustlite lowering and
    from hand-written builders.  Violations found:

    - jumps to labels outside the block array;
    - uses of undeclared variables (including [Pindex] index vars);
    - duplicate local declarations;
    - parameters or the return slot missing from the declarations;
    - [Ref]/[Address_of] of a variable classified as a temporary when
      no [Deref] precedes it (the address-taken analysis invariant of
      paper Sec. 3.2);
    - calls to functions that are neither bodies of the program nor
      declared primitives (when a program context is supplied). *)

type issue = { in_function : string; detail : string }

val pp_issue : Format.formatter -> issue -> unit

val check_body : Syntax.body -> issue list
(** Intra-procedural checks only. *)

val check_program : ?primitives:string list -> Syntax.program -> issue list
(** All body checks plus call-target resolution against the program
    and the given primitive names. *)

type base = Global of string | Local of int * string

type proj = Field of int | Index of int

type t = { base : base; projs : proj list }

let global name = { base = Global name; projs = [] }
let local ~frame var = { base = Local (frame, var); projs = [] }
let extend p pr = { p with projs = p.projs @ [ pr ] }

let base_equal a b =
  match (a, b) with
  | Global x, Global y -> String.equal x y
  | Local (f, x), Local (g, y) -> f = g && String.equal x y
  | (Global _ | Local _), _ -> false

let base_compare a b =
  match (a, b) with
  | Global x, Global y -> String.compare x y
  | Global _, Local _ -> -1
  | Local _, Global _ -> 1
  | Local (f, x), Local (g, y) ->
      let c = Int.compare f g in
      if c <> 0 then c else String.compare x y

let proj_equal (a : proj) (b : proj) = a = b

let proj_compare (a : proj) (b : proj) =
  match (a, b) with
  | Field x, Field y | Index x, Index y -> Int.compare x y
  | Field _, Index _ -> -1
  | Index _, Field _ -> 1

let equal a b =
  base_equal a.base b.base
  && List.length a.projs = List.length b.projs
  && List.for_all2 proj_equal a.projs b.projs

let compare a b =
  let c = base_compare a.base b.base in
  if c <> 0 then c else List.compare proj_compare a.projs b.projs

let rec projs_prefix ps qs =
  match (ps, qs) with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: ps', q :: qs' -> proj_equal p q && projs_prefix ps' qs'

let is_prefix p q = base_equal p.base q.base && projs_prefix p.projs q.projs

let disjoint p q = not (is_prefix p q) && not (is_prefix q p)

let pp_base fmt = function
  | Global name -> Format.fprintf fmt "@%s" name
  | Local (frame, var) -> Format.fprintf fmt "%%%d:%s" frame var

let pp_proj fmt = function
  | Field i -> Format.fprintf fmt ".%d" i
  | Index i -> Format.fprintf fmt "[%d]" i

let pp fmt p =
  pp_base fmt p.base;
  List.iter (pp_proj fmt) p.projs

let to_string p = Format.asprintf "%a" pp p

module Base = struct
  type t = base

  let equal = base_equal
  let compare = base_compare
  let pp = pp_base
end

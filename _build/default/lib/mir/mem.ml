module BaseMap = Map.Make (Path.Base)

type 'abs t = 'abs Value.t BaseMap.t

let empty = BaseMap.empty
let define base v m = BaseMap.add base v m
let defined base m = BaseMap.mem base m

let read m (path : Path.t) =
  match BaseMap.find_opt path.base m with
  | None ->
      Error (Printf.sprintf "read from undefined object %s" (Format.asprintf "%a" Path.Base.pp path.base))
  | Some root -> Value.project_many root path.projs

let write m (path : Path.t) v =
  match BaseMap.find_opt path.base m with
  | None ->
      if path.projs = [] then Ok (BaseMap.add path.base v m)
      else
        Error
          (Printf.sprintf "write through projection into undefined object %s"
             (Format.asprintf "%a" Path.Base.pp path.base))
  | Some root -> (
      match Value.update root path.projs v with
      | Error _ as e -> e
      | Ok root' -> Ok (BaseMap.add path.base root' m))

let bases m = List.map fst (BaseMap.bindings m)
let cardinal = BaseMap.cardinal

let equal_on bs m1 m2 =
  List.for_all
    (fun b ->
      match (BaseMap.find_opt b m1, BaseMap.find_opt b m2) with
      | Some v1, Some v2 -> Value.equal v1 v2
      | None, None -> true
      | Some _, None | None, Some _ -> false)
    bs

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  BaseMap.iter
    (fun b v -> Format.fprintf fmt "%a = %a@," Path.Base.pp b Value.pp v)
    m;
  Format.fprintf fmt "@]"

lib/mir/path.mli: Format

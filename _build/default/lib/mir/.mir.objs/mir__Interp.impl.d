lib/mir/interp.ml: Array Bool Eval Format List Map Mem Option Path Printf Result String Syntax Ty Value Word

lib/mir/eval.ml: Bool Format Int64 Printf Result Syntax Ty Value Word

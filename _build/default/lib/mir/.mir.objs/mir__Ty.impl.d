lib/mir/ty.ml: Format List String Word

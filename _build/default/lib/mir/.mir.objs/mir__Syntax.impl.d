lib/mir/syntax.ml: Array List Map Option String Ty Word

lib/mir/pp.ml: Array Format List Syntax Ty Word

lib/mir/eval.mli: Syntax Ty Value Word

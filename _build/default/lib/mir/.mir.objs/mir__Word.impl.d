lib/mir/word.ml: Format Int64 Printf

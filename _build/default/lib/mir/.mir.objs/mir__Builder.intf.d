lib/mir/builder.mli: Syntax Ty Word

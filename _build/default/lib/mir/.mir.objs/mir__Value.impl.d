lib/mir/value.ml: Array Bool Format Int List Path Printf String Ty Word

lib/mir/path.ml: Format Int List String

lib/mir/word.mli: Format

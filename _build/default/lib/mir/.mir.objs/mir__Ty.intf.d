lib/mir/ty.mli: Format Word

lib/mir/validate.ml: Array Format Hashtbl List Option Printf Set String Syntax

lib/mir/value.mli: Format Path Ty Word

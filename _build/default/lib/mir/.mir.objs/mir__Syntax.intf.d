lib/mir/syntax.mli: Ty Word

lib/mir/mem.mli: Format Path Value

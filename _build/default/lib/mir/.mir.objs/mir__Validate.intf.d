lib/mir/validate.mli: Format Syntax

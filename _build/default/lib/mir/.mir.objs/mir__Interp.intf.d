lib/mir/interp.mli: Format Mem Syntax Value

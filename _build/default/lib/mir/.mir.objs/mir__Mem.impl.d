lib/mir/mem.ml: Format List Map Path Printf Value

lib/mir/pp.mli: Format Syntax

lib/mir/builder.ml: Array List Printf String Syntax Ty Word

(** Imperative construction of MIRlight bodies.

    Used by the Rustlite lowering pass and by tests that hand-write
    small CFGs.  A builder accumulates declarations and blocks; blocks
    are reserved with {!fresh_block}, filled with {!push}/{!assign},
    and closed with {!terminate}.  {!finish} checks every reserved
    block was terminated. *)

type t

val create :
  name:string ->
  params:(string * Ty.t * Syntax.local_kind) list ->
  ret_ty:Ty.t ->
  t
(** Declares the return slot ["_0"] (as a temp) and the parameters. *)

val declare_return_local : t -> unit
(** Reclassify the return slot as address-taken. *)

val temp : t -> ?name:string -> Ty.t -> string
(** Declare a fresh temporary; generated names are ["_t0"], ["_t1"], … *)

val local : t -> ?name:string -> Ty.t -> string
(** Declare a fresh address-taken local. *)

val fresh_block : t -> Syntax.label
(** Reserve a new empty block and return its label (does not switch). *)

val current : t -> Syntax.label
val switch_to : t -> Syntax.label -> unit

val push : t -> Syntax.statement -> unit
val assign : t -> Syntax.place -> Syntax.rvalue -> unit
val assign_var : t -> string -> Syntax.rvalue -> unit

val terminate : t -> Syntax.terminator -> unit
(** Close the current block; fails if it is already terminated. *)

val finish : t -> Syntax.body
(** Raises [Invalid_argument] if any reserved block lacks a terminator. *)

(** {1 Operand and place helpers} *)

val pvar : string -> Syntax.place
val pfield : Syntax.place -> int -> Syntax.place
val pindex : Syntax.place -> string -> Syntax.place
val pconst_index : Syntax.place -> int -> Syntax.place
val pderef : Syntax.place -> Syntax.place
val pdowncast : Syntax.place -> int -> Syntax.place

val copy : string -> Syntax.operand
val copy_place : Syntax.place -> Syntax.operand
val move : string -> Syntax.operand
val cint : Ty.int_ty -> int -> Syntax.operand
val cword : Ty.int_ty -> Word.t -> Syntax.operand
val cu64 : int -> Syntax.operand
val cusize : int -> Syntax.operand
val cbool : bool -> Syntax.operand
val cunit : Syntax.operand

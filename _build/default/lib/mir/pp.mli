(** Pretty-printing of MIRlight programs in a rustc-like rendering.

    This is the output format of the [mirlightgen] CLI (paper Sec. 3.3):
    the same AST the interpreter executes, printed one statement per
    line so it can be diffed against rustc's [--emit mir] output. *)

val pp_place : Format.formatter -> Syntax.place -> unit
val pp_operand : Format.formatter -> Syntax.operand -> unit
val pp_rvalue : Format.formatter -> Syntax.rvalue -> unit
val pp_statement : Format.formatter -> Syntax.statement -> unit
val pp_terminator : Format.formatter -> Syntax.terminator -> unit
val pp_body : Format.formatter -> Syntax.body -> unit
val pp_program : Format.formatter -> Syntax.program -> unit
val body_to_string : Syntax.body -> string
val program_to_string : Syntax.program -> string

type label = int

type place_elem =
  | Deref
  | Pfield of int
  | Pindex of string
  | Pconst_index of int
  | Downcast of int

type place = { var : string; elems : place_elem list }

type constant =
  | Cint of Word.t * Ty.int_ty
  | Cbool of bool
  | Cunit
  | Cfn of string

type operand = Copy of place | Move of place | Const of constant

type bin_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type un_op = Not | Neg

type aggregate_kind =
  | Agg_tuple
  | Agg_struct of string
  | Agg_variant of string * int
  | Agg_array

type rvalue =
  | Use of operand
  | Repeat of operand * int
  | Ref of place
  | Address_of of place
  | Len of place
  | Cast of operand * Ty.int_ty
  | Binary of bin_op * operand * operand
  | Checked_binary of bin_op * operand * operand
  | Unary of un_op * operand
  | Discriminant of place
  | Aggregate of aggregate_kind * operand list

type statement =
  | Assign of place * rvalue
  | Set_discriminant of place * int
  | Storage_live of string
  | Storage_dead of string
  | Nop

type terminator =
  | Goto of label
  | Switch_int of operand * (Word.t * label) list * label
  | Return
  | Unreachable
  | Drop of place * label
  | Call of { dest : place; func : string; args : operand list; target : label option }
  | Assert of { cond : operand; expected : bool; msg : string; target : label }

type block = { stmts : statement list; term : terminator }

type local_kind = Klocal | Ktemp

type local_decl = { lname : string; lty : Ty.t; lkind : local_kind }

type body = {
  fname : string;
  params : string list;
  locals : local_decl list;
  blocks : block array;
}

module StrMap = Map.Make (String)

type program = body StrMap.t

let return_var = "_0"

let program_of_bodies bodies =
  List.fold_left (fun acc b -> StrMap.add b.fname b acc) StrMap.empty bodies

let find_body prog name = StrMap.find_opt name prog
let body_names prog = List.map fst (StrMap.bindings prog)
let fold_bodies f prog init = StrMap.fold f prog init
let add_body prog b = StrMap.add b.fname b prog
let union a b = StrMap.union (fun _ _ rhs -> Some rhs) a b

let local_kind_of body name =
  List.find_opt (fun d -> String.equal d.lname name) body.locals
  |> Option.map (fun d -> d.lkind)

let place_of_var var = { var; elems = [] }

let statement_count body =
  Array.fold_left (fun n blk -> n + List.length blk.stmts) 0 body.blocks

let block_count body = Array.length body.blocks

let mir_line_count body =
  let per_block = Array.fold_left (fun n blk -> n + List.length blk.stmts + 2) 0 body.blocks in
  (* signature line + declaration lines + per-block (header + stmts + term) *)
  1 + List.length body.locals + per_block

let program_line_count prog =
  fold_bodies (fun _ body n -> n + mir_line_count body) prog 0

(** Object-view memory.

    Memory is a finite map from path bases (globals and frame-local
    variables whose address is taken) to whole values.  There is no
    byte layout, no aliasing, and no deallocation: the paper models
    drops as no-ops, relying on Rust's guarantee that no pointer
    outlives its object (Sec. 3.2, "Memory Safety Implies Pointer
    Validity").

    Assignment is axiomatized as changing only the assigned location;
    here that is a theorem of the implementation, checked by the
    [frame-condition] property tests. *)

type 'abs t

val empty : 'abs t

val define : Path.base -> 'abs Value.t -> 'abs t -> 'abs t
(** [define base v m] allocates (or re-binds) the root object [base]. *)

val defined : Path.base -> 'abs t -> bool

val read : 'abs t -> Path.t -> ('abs Value.t, string) result
(** Follow the base then each projection. *)

val write : 'abs t -> Path.t -> 'abs Value.t -> ('abs t, string) result
(** Functional update at a path; the base must already be defined
    unless the path has no projections (a whole-object store allocates). *)

val bases : 'abs t -> Path.base list
val cardinal : 'abs t -> int

val equal_on : Path.base list -> 'abs t -> 'abs t -> bool
(** [equal_on bs m1 m2]: the two memories agree (by {!Value.equal}) on
    every base in [bs]. *)

val pp : Format.formatter -> 'abs t -> unit

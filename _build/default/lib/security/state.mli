(** Machine states of the abstract transition system (paper Sec. 5.1).

    A state is the monitor's abstract data plus the CPU-visible pieces
    the security proofs talk about: which principal is running, its
    register file, the saved register contexts of the others, and the
    data oracle. *)

val nregs : int
(** Size of the modelled register file. *)

type regs = Mir.Word.t array

val zero_regs : unit -> regs
val regs_equal : regs -> regs -> bool
val pp_regs : Format.formatter -> regs -> unit

type t = {
  mon : Hyperenclave.Absdata.t;
  active : Principal.t;
  regs : regs;  (** registers of the active principal *)
  ctx : regs Principal.Map.t;  (** saved contexts of inactive principals *)
  oracles : Oracle.t Principal.Map.t;
      (** per-principal declassification streams: a marshalling-buffer
          read consumes from the reader's own stream, so other
          principals' reads are invisible (Sec. 5.4) *)
  tlb : Tlb.t;
      (** tagged translation cache; consistent by construction as long
          as mapping-removing hypercalls flush (see {!Tlb}) *)
}

val boot : Hyperenclave.Layout.t -> t
(** Booted monitor, primary OS active with zeroed registers. *)

val saved_ctx : t -> Principal.t -> regs
(** A principal's saved context (zeros if never saved). *)

val oracle_of : t -> Principal.t -> Oracle.t
(** A principal's oracle stream (a fresh one if never used). *)

val take_oracle : t -> Principal.t -> Mir.Word.t * t

val with_reg : t -> int -> Mir.Word.t -> (t, string) result
val reg : t -> int -> (Mir.Word.t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

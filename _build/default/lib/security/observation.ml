open Hyperenclave
module Word = Mir.Word

let ( let* ) = Result.bind

type view = {
  is_active : bool;
  cpu_regs : State.regs option;
  saved_regs : State.regs;
  mappings : (Word.t * Word.t * Flags.t) list;
  pages : (Word.t * Word.t list) list;
  oracle_pos : int;
}

let page_contents d hpa =
  let g = Absdata.geom d in
  let nwords = Geometry.page_size g / 8 in
  let rec go i acc =
    if i >= nwords then Ok (List.rev acc)
    else
      let* w = Phys_mem.read64 d.Absdata.phys (Int64.add hpa (Int64.of_int (8 * i))) in
      go (i + 1) (w :: acc)
  in
  go 0 []

let reachable_of (st : State.t) p =
  let d = st.State.mon in
  match p with
  | Principal.Os -> Nested.os_reachable d
  | Principal.Enclave eid -> (
      match Absdata.find_enclave d eid with
      | Error _ -> Ok [] (* principal not created yet: empty address space *)
      | Ok e -> Nested.enclave_reachable d e)

let observe (st : State.t) p =
  let d = st.State.mon in
  let is_active = Principal.equal st.State.active p in
  let* reach = reachable_of st p in
  let non_shared =
    List.filter
      (fun (_, hpa, _) ->
        not (Layout.region_equal (Layout.region_of d.Absdata.layout hpa) Layout.Mbuf))
      reach
  in
  let* pages =
    List.fold_left
      (fun acc (_, hpa, _) ->
        let* acc = acc in
        if List.exists (fun (p0, _) -> Word.equal p0 hpa) acc then Ok acc
        else
          let* contents = page_contents d hpa in
          Ok ((hpa, contents) :: acc))
      (Ok []) non_shared
  in
  Ok
    {
      is_active;
      cpu_regs = (if is_active then Some (Array.copy st.State.regs) else None);
      saved_regs = State.saved_ctx st p;
      mappings = reach;
      pages = List.sort (fun (a, _) (b, _) -> Word.compare_u a b) pages;
      oracle_pos = Oracle.position (State.oracle_of st p);
    }

let mapping_equal (va1, pa1, f1) (va2, pa2, f2) =
  Word.equal va1 va2 && Word.equal pa1 pa2 && Flags.equal f1 f2

let view_equal a b =
  Bool.equal a.is_active b.is_active
  && Option.equal State.regs_equal a.cpu_regs b.cpu_regs
  && State.regs_equal a.saved_regs b.saved_regs
  && List.equal mapping_equal a.mappings b.mappings
  && List.equal
       (fun (p1, c1) (p2, c2) -> Word.equal p1 p2 && List.equal Word.equal c1 c2)
       a.pages b.pages
  && a.oracle_pos = b.oracle_pos

let pp_view fmt v =
  Format.fprintf fmt
    "@[<v>active: %b, cpu: %a, saved: %a, oracle@%d@,%d mappings, %d private pages@]"
    v.is_active
    (Format.pp_print_option State.pp_regs)
    v.cpu_regs State.pp_regs v.saved_regs v.oracle_pos (List.length v.mappings)
    (List.length v.pages)

let indistinguishable p st1 st2 =
  let* v1 = observe st1 p in
  let* v2 = observe st2 p in
  Ok (view_equal v1 v2)

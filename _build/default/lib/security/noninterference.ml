module Report = Mirverif.Report

let view_of what p st =
  match Observation.observe st p with
  | Ok v -> Ok v
  | Error msg -> Error (Printf.sprintf "%s: observation failed: %s" what msg)

let check_integrity ~observer ~states ~actions =
  let name = Printf.sprintf "NI 5.2 integrity vs %s" (Principal.to_string observer) in
  List.fold_left
    (fun report (label, st) ->
      if Principal.equal st.State.active observer then Report.add_skip report
      else
        List.fold_left
          (fun report action ->
            let case =
              Printf.sprintf "%s / %s" label (Transition.action_to_string action)
            in
            if Transition.configures st observer action then
              (* lifecycle actions legitimately reshape the observer's
                 view; the pairwise lemma covers them *)
              Report.add_skip report
            else
            match Transition.step st action with
            | Error _ -> Report.add_skip report
            | Ok st' -> (
                match (view_of case observer st, view_of case observer st') with
                | Ok v, Ok v' ->
                    if Observation.view_equal v v' then Report.add_pass report
                    else
                      Report.add_failure report ~case
                        ~reason:"another principal's step changed the observer's view"
                | Error reason, _ | _, Error reason ->
                    Report.add_failure report ~case ~reason))
          report actions)
    (Report.empty name) states

let consistency ~name ~observer ~pairs ~actions ~wants_active =
  List.fold_left
    (fun report (label, st1, st2) ->
      let applicable =
        Principal.equal st1.State.active st2.State.active
        && Bool.equal (Principal.equal st1.State.active observer) wants_active
      in
      if not applicable then Report.add_skip report
      else
        match Observation.indistinguishable observer st1 st2 with
        | Error _ -> Report.add_skip report
        | Ok false -> Report.add_skip report (* outside the lemma's hypothesis *)
        | Ok true ->
            List.fold_left
              (fun report action ->
                let case =
                  Printf.sprintf "%s / %s" label (Transition.action_to_string action)
                in
                match (Transition.step st1 action, Transition.step st2 action) with
                | Error _, Error _ -> Report.add_skip report
                | Ok st1', Ok st2' -> (
                    match Observation.indistinguishable observer st1' st2' with
                    | Ok true -> Report.add_pass report
                    | Ok false ->
                        Report.add_failure report ~case
                          ~reason:"post-states distinguishable to the observer"
                    | Error reason -> Report.add_failure report ~case ~reason)
                | Ok _, Error e | Error e, Ok _ ->
                    if wants_active then
                      (* the active observer can see a fault directly *)
                      Report.add_failure report ~case
                        ~reason:
                          (Printf.sprintf
                             "enabledness differs between indistinguishable states \
                              (%s)" e)
                    else Report.add_skip report)
              report actions)
    (Report.empty name) pairs

let check_local_consistency ~observer ~pairs ~actions =
  consistency
    ~name:(Printf.sprintf "NI 5.3 confidentiality vs %s" (Principal.to_string observer))
    ~observer ~pairs ~actions ~wants_active:true

let check_inactive_consistency ~observer ~pairs ~actions =
  consistency
    ~name:(Printf.sprintf "NI 5.4 inactive consistency vs %s" (Principal.to_string observer))
    ~observer ~pairs ~actions ~wants_active:false

let check_trace ~observer ~pairs ~schedules =
  let name =
    Printf.sprintf "NI 5.1 trace indistinguishability vs %s"
      (Principal.to_string observer)
  in
  List.fold_left
    (fun report (label, st1, st2) ->
      match Observation.indistinguishable observer st1 st2 with
      | Error _ | Ok false -> Report.add_skip report
      | Ok true ->
          List.fold_left
            (fun report schedule ->
              let rec go report i st1 st2 = function
                | [] -> Report.add_pass report
                | action :: rest -> (
                    let case =
                      Printf.sprintf "%s / step %d: %s" label i
                        (Transition.action_to_string action)
                    in
                    match (Transition.step st1 action, Transition.step st2 action) with
                    | Error _, Error _ -> go report i st1 st2 rest
                    | Ok st1', Ok st2' -> (
                        match Observation.indistinguishable observer st1' st2' with
                        | Ok true -> go report (i + 1) st1' st2' rest
                        | Ok false ->
                            Report.add_failure report ~case
                              ~reason:"distinguishable mid-trace"
                        | Error reason -> Report.add_failure report ~case ~reason)
                    | Ok _, Error e | Error e, Ok _ ->
                        if Principal.equal st1.State.active observer then
                          Report.add_failure report ~case
                            ~reason:
                              (Printf.sprintf
                                 "enabledness diverged while the observer runs (%s)" e)
                        else
                          (* schedules genuinely fork: stop this trace *)
                          Report.add_pass report)
              in
              go report 0 st1 st2 schedule)
            report schedules)
    (Report.empty name) pairs

let check_all ~observers ~states ~pairs ~actions =
  List.concat_map
    (fun observer ->
      [
        check_integrity ~observer ~states ~actions;
        check_local_consistency ~observer ~pairs ~actions;
        check_inactive_consistency ~observer ~pairs ~actions;
      ])
    observers

open Hyperenclave
module Word = Mir.Word

let ( let* ) = Result.bind

let enclaves d =
  List.map
    (fun eid ->
      match Absdata.find_enclave d eid with
      | Ok e -> e
      | Error _ -> assert false)
    (Absdata.enclave_ids d)

let rec each f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      each f rest

(* Physical pages an enclave reaches from its ELRANGE. *)
let elrange_pages d (e : Enclave.t) =
  let geom = Absdata.geom d in
  let* reach = Nested.enclave_reachable d e in
  Ok
    (List.filter_map
       (fun (va, hpa, _) -> if Enclave.in_elrange e geom va then Some hpa else None)
       reach)

let elrange_isolation d =
  let es = enclaves d in
  let* page_sets =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* pages = elrange_pages d e in
        Ok ((e, pages) :: acc))
      (Ok []) es
  in
  let rec pairs = function
    | [] -> Ok ()
    | (e1, p1) :: rest ->
        let* () =
          each
            (fun (e2, p2) ->
              match
                List.find_opt (fun pa -> List.exists (Word.equal pa) p2) p1
              with
              | None -> Ok ()
              | Some pa ->
                  Error
                    (Printf.sprintf
                       "enclaves %d and %d both reach physical page %s from \
                        their ELRANGEs"
                       e1.Enclave.eid e2.Enclave.eid (Word.to_hex pa)))
            rest
        in
        pairs rest
  in
  pairs page_sets

let mbuf_invariant d =
  let geom = Absdata.geom d in
  let layout = d.Absdata.layout in
  let* os_reach = Nested.os_reachable d in
  let os_pages = List.map (fun (_, hpa, _) -> hpa) os_reach in
  each
    (fun e ->
      let* reach = Nested.enclave_reachable d e in
      each
        (fun (va, hpa, _) ->
          if List.exists (Word.equal hpa) os_pages then
            if
              Layout.region_equal (Layout.region_of layout hpa) Layout.Mbuf
              && Enclave.in_mbuf_va e geom va
            then Ok ()
            else
              Error
                (Printf.sprintf
                   "enclave %d va %s and the OS share physical page %s outside \
                    the marshalling buffer"
                   e.Enclave.eid (Word.to_hex va) (Word.to_hex hpa))
          else Ok ())
        reach)
    (enclaves d)

let epcm_invariant d =
  let layout = d.Absdata.layout in
  each
    (fun e ->
      let* reach = Nested.enclave_reachable d e in
      each
        (fun (va, hpa, _) ->
          match Layout.epc_page_index layout hpa with
          | None -> Ok ()
          | Some page -> (
              let* st = Epcm.get d.Absdata.epcm page in
              match st with
              | Epcm.Valid { eid; va = recorded_va }
                when eid = e.Enclave.eid && Word.equal recorded_va va ->
                  Ok ()
              | Epcm.Valid { eid; _ } ->
                  Error
                    (Printf.sprintf
                       "EPC page %d mapped by enclave %d but EPCM records owner %d"
                       page e.Enclave.eid eid)
              | Epcm.Free ->
                  Error
                    (Printf.sprintf
                       "covert mapping: EPC page %d mapped by enclave %d with no \
                        EPCM entry"
                       page e.Enclave.eid)))
        reach)
    (enclaves d)

let no_huge d ~root =
  let g = Absdata.geom d in
  let rec table frame level =
    let rec go index =
      if index >= Geometry.entries_per_table g then Ok ()
      else
        let* entry = Pt_flat.read_entry d ~frame ~index in
        let* () =
          if not (Pte.is_present g entry) then Ok ()
          else if Pte.is_huge g entry then
            Error
              (Printf.sprintf "huge mapping at level %d (frame %d, index %d)"
                 level frame index)
          else if level = 1 then Ok ()
          else
            match Layout.frame_index d.Absdata.layout (Pte.addr g entry) with
            | None ->
                Error
                  (Printf.sprintf "entry escapes frame area (frame %d, index %d)"
                     frame index)
            | Some next -> table next (level - 1)
        in
        go (index + 1)
    in
    go 0
  in
  table root g.Geometry.levels

let enclave_invariants d =
  let geom = Absdata.geom d in
  let layout = d.Absdata.layout in
  each
    (fun e ->
      if not (Enclave.ranges_disjoint e geom) then
        Error
          (Printf.sprintf "enclave %d: ELRANGE overlaps the marshalling window"
             e.Enclave.eid)
      else
        let* () = no_huge d ~root:e.Enclave.gpt_root in
        let* () = no_huge d ~root:e.Enclave.ept_root in
        let* reach = Nested.enclave_reachable d e in
        each
          (fun (va, hpa, _) ->
            let in_epc =
              Layout.region_equal (Layout.region_of layout hpa) Layout.Epc
            in
            let in_elrange = Enclave.in_elrange e geom va in
            if in_epc && not in_elrange then
              Error
                (Printf.sprintf
                   "enclave %d: va %s outside ELRANGE reaches EPC page %s"
                   e.Enclave.eid (Word.to_hex va) (Word.to_hex hpa))
            else if in_elrange && not in_epc then
              Error
                (Printf.sprintf
                   "enclave %d: ELRANGE va %s reaches non-EPC page %s"
                   e.Enclave.eid (Word.to_hex va) (Word.to_hex hpa))
            else Ok ())
          reach)
    (enclaves d)

let tables_protected d =
  let layout = d.Absdata.layout in
  let bad hpa =
    match Layout.region_of layout hpa with
    | Layout.Frame_area | Layout.Monitor -> true
    | Layout.Normal | Layout.Mbuf | Layout.Epc | Layout.Outside -> false
  in
  let* os_reach = Nested.os_reachable d in
  let* () =
    each
      (fun (gpa, hpa, _) ->
        if bad hpa then
          Error
            (Printf.sprintf "OS gpa %s reaches protected page %s" (Word.to_hex gpa)
               (Word.to_hex hpa))
        else Ok ())
      os_reach
  in
  each
    (fun e ->
      let* reach = Nested.enclave_reachable d e in
      each
        (fun (va, hpa, _) ->
          if bad hpa then
            Error
              (Printf.sprintf "enclave %d va %s reaches protected page %s"
                 e.Enclave.eid (Word.to_hex va) (Word.to_hex hpa))
          else Ok ())
        reach)
    (enclaves d)

let as_inv name f =
  Mirverif.Invariant.make name (fun d -> f d)

let all =
  [
    as_inv "elrange-isolation" elrange_isolation;
    as_inv "mbuf-invariant" mbuf_invariant;
    as_inv "epcm-invariant" epcm_invariant;
    as_inv "enclave-invariants" enclave_invariants;
    as_inv "tables-protected" tables_protected;
  ]

let check d = Mirverif.Invariant.check_all all d

(** Step-wise noninterference lemmas (paper Sec. 5.3).

    Theorem 5.1 (indistinguishability is preserved by transitions) is
    decomposed, as in SeKVM, into three step lemmas checked here over
    generated states, state pairs, and actions:

    - {!check_integrity} — Lemma 5.2: a step by some {e other} active
      principal leaves p's view unchanged.
    - {!check_local_consistency} — Lemma 5.3: from two states
      indistinguishable to the {e active} principal p, the same action
      by p yields indistinguishable states; enabledness must agree,
      since p could distinguish a fault from a success.
    - {!check_inactive_consistency} — Lemma 5.4 (generalized from
      "moves that activate p" to all moves): from two states
      indistinguishable to an {e inactive} p, the same action by the
      same other principal, when enabled in both, preserves
      indistinguishability.

    The state pairs fed to the consistency lemmas must share their
    public structure (same lifecycle history) and differ only in
    secrets; {!Check.Gen} constructs them that way.  Resource-
    exhaustion channels (a hypercall failing for lack of frames) are
    out of scope, as in the paper. *)

val check_integrity :
  observer:Principal.t ->
  states:(string * State.t) list ->
  actions:Transition.action list ->
  Mirverif.Report.t

val check_local_consistency :
  observer:Principal.t ->
  pairs:(string * State.t * State.t) list ->
  actions:Transition.action list ->
  Mirverif.Report.t

val check_inactive_consistency :
  observer:Principal.t ->
  pairs:(string * State.t * State.t) list ->
  actions:Transition.action list ->
  Mirverif.Report.t

val check_trace :
  observer:Principal.t ->
  pairs:(string * State.t * State.t) list ->
  schedules:Transition.action list list ->
  Mirverif.Report.t
(** Theorem 5.1 end-to-end: from an indistinguishable pair, run the
    same multi-step schedule in both executions and require
    indistinguishability after {e every} step.  A step disabled in both
    runs is skipped; enabledness divergence fails when the observer is
    the active principal (it can see its own fault) and truncates the
    schedule otherwise (the runs have genuinely different schedules
    from that point, which rely-guarantee handles separately). *)

val check_all :
  observers:Principal.t list ->
  states:(string * State.t) list ->
  pairs:(string * State.t * State.t) list ->
  actions:Transition.action list ->
  Mirverif.Report.t list
(** All three lemmas for every observer. *)

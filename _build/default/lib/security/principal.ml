type t = Os | Enclave of int

let equal a b =
  match (a, b) with
  | Os, Os -> true
  | Enclave x, Enclave y -> x = y
  | (Os | Enclave _), _ -> false

let compare a b =
  match (a, b) with
  | Os, Os -> 0
  | Os, Enclave _ -> -1
  | Enclave _, Os -> 1
  | Enclave x, Enclave y -> Int.compare x y

let pp fmt = function
  | Os -> Format.pp_print_string fmt "primary-os"
  | Enclave e -> Format.fprintf fmt "enclave-%d" e

let to_string p = Format.asprintf "%a" pp p

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

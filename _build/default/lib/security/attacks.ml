open Hyperenclave
module Word = Mir.Word

let ( let* ) = Result.bind

type scenario = {
  name : string;
  description : string;
  build : unit -> (Absdata.t, string) result;
  expected_violation : string option;
}

let layout = lazy (Layout.default Geometry.tiny)

let page_va i =
  Int64.mul (Int64.of_int (Geometry.page_size Geometry.tiny)) (Int64.of_int i)

let hc what (o : _ Hypercall.outcome) =
  if Hypercall.status_equal o.Hypercall.status Hypercall.Success then
    Ok (o.Hypercall.d, o.Hypercall.value)
  else
    Error
      (Format.asprintf "%s failed: %a" what Hypercall.pp_status o.Hypercall.status)

(* Two enclaves, one EPC page each, all through the official interface. *)
let build_two_enclaves () =
  let d = Boot.booted (Lazy.force layout) in
  let* d, e1 =
    hc "create e1" (Hypercall.create d ~elrange_base:0L ~elrange_pages:2 ~mbuf_va:(page_va 8))
  in
  let* d, () = hc "add e1 page" (Hypercall.add_page d ~eid:e1 ~va:0L) in
  let* d, e2 =
    hc "create e2" (Hypercall.create d ~elrange_base:0L ~elrange_pages:2 ~mbuf_va:(page_va 8))
  in
  let* d, () = hc "add e2 page" (Hypercall.add_page d ~eid:e2 ~va:0L) in
  Ok (d, e1, e2)

let healthy =
  {
    name = "healthy";
    description = "two enclaves built purely through hypercalls";
    build =
      (fun () ->
        let* d, _, _ = build_two_enclaves () in
        Ok d);
    expected_violation = None;
  }

(* Map [va -> hpa] in both of an enclave's tables, the way a buggy
   monitor code path would: GPT identity, EPT to the target. *)
let forge_mapping d (e : Enclave.t) ~va ~hpa =
  let* d = Pt_flat.map_page d ~root:e.Enclave.gpt_root ~va ~pa:va Flags.user_rw in
  Pt_flat.map_page d ~root:e.Enclave.ept_root ~va ~pa:hpa Flags.user_rw

let cross_enclave_alias =
  {
    name = "cross-enclave-alias";
    description =
      "enclave 2's page table maps an ELRANGE address onto enclave 1's EPC page \
       (Fig. 5 case 1)";
    build =
      (fun () ->
        let* d, _, e2 = build_two_enclaves () in
        let* e2 = Absdata.find_enclave d e2 in
        (* e1 owns EPC page 0; alias e2's second ELRANGE page onto it *)
        let epc0 = Layout.epc_page_addr d.Absdata.layout 0 in
        forge_mapping d e2 ~va:(page_va 1) ~hpa:epc0);
    expected_violation = Some "elrange-isolation";
  }

let outside_elrange =
  {
    name = "outside-elrange";
    description =
      "an address outside the ELRANGE is mapped to an EPC page (Fig. 5 case 2)";
    build =
      (fun () ->
        let* d, e1, _ = build_two_enclaves () in
        let* e1 = Absdata.find_enclave d e1 in
        (* ELRANGE is pages 0..1; page 4 is outside it and outside the
           mbuf.  The buggy code path dutifully records the EPCM entry
           (so the EPCM invariant holds) but forgets the ELRANGE
           check. *)
        match Epcm.find_free d.Absdata.epcm with
        | None -> Error "no free EPC page"
        | Some page ->
            let hpa = Layout.epc_page_addr d.Absdata.layout page in
            let* d = forge_mapping d e1 ~va:(page_va 4) ~hpa in
            let* epcm =
              Epcm.set d.Absdata.epcm page
                (Epcm.Valid { eid = e1.Enclave.eid; va = page_va 4 })
            in
            Ok { d with Absdata.epcm });
    expected_violation = Some "enclave-invariants";
  }

let shallow_copy =
  {
    name = "shallow-copy";
    description =
      "the enclave GPT's top-level entry is copied from a guest table, so the \
       next-level table lives in guest memory (Sec. 4.1 bug)";
    build =
      (fun () ->
        let* d, e1, _ = build_two_enclaves () in
        let* e1 = Absdata.find_enclave d e1 in
        (* entry 1 of the GPT root points into normal (guest) memory *)
        let guest_page = page_va 2 in
        let evil = Pte.make Geometry.tiny ~pa:guest_page Flags.user_rw in
        Pt_flat.write_entry d ~frame:e1.Enclave.gpt_root ~index:1 evil);
    expected_violation = Some "frame area";
  }

let mbuf_bypass =
  {
    name = "mbuf-bypass";
    description =
      "a normal-memory page outside the marshalling window is shared between an \
       enclave and the OS";
    build =
      (fun () ->
        let* d, e1, _ = build_two_enclaves () in
        let* e1 = Absdata.find_enclave d e1 in
        (* normal page 2 is OS-reachable and not in the mbuf window *)
        forge_mapping d e1 ~va:(page_va 5) ~hpa:(page_va 2));
    expected_violation = Some "mbuf-invariant";
  }

let table_exposure =
  {
    name = "table-exposure";
    description = "a page-table frame of the frame area is mapped into an enclave";
    build =
      (fun () ->
        let* d, e1, _ = build_two_enclaves () in
        let* e1 = Absdata.find_enclave d e1 in
        let victim = Layout.frame_addr d.Absdata.layout 0 in
        forge_mapping d e1 ~va:(page_va 5) ~hpa:victim);
    expected_violation = Some "tables-protected";
  }

let all =
  [ healthy; cross_enclave_alias; outside_elrange; shallow_copy; mbuf_bypass; table_exposure ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run scenario =
  let* d = scenario.build () in
  match (Invariants.check d, scenario.expected_violation) with
  | Ok (), None -> Ok ()
  | Ok (), Some expected ->
      Error (Printf.sprintf "attack %s was NOT detected (expected %s)" scenario.name expected)
  | Error msg, Some expected ->
      if contains msg expected then Ok ()
      else
        Error
          (Printf.sprintf "attack %s rejected for the wrong reason: %s (expected %s)"
             scenario.name msg expected)
  | Error msg, None ->
      Error (Printf.sprintf "healthy scenario rejected: %s" msg)

(** Nested address translation (Fig. 2).

    An enclave access translates twice: its guest page table maps the
    virtual address to a guest-physical address, and its EPT maps that
    to host-physical; effective permissions are the conjunction.  The
    primary OS's own guest page tables are attacker-controlled and not
    part of the monitor state, so the OS is modelled as addressing
    guest-physical memory directly — exactly the paper's observation
    that only the EPT bounds what the untrusted OS can reach.

    Both stages reuse {!Hyperenclave.Pt_flat.translate}, the same
    verified walker the code proofs cover (paper Sec. 5.1). *)

val conj_flags : Hyperenclave.Flags.t -> Hyperenclave.Flags.t -> Hyperenclave.Flags.t

val enclave_translate :
  Hyperenclave.Absdata.t -> Hyperenclave.Enclave.t -> va:Mir.Word.t ->
  ((Mir.Word.t * Hyperenclave.Flags.t) option, string) result
(** Full GVA to HPA translation for an enclave access. *)

val os_translate :
  Hyperenclave.Absdata.t -> gpa:Mir.Word.t ->
  ((Mir.Word.t * Hyperenclave.Flags.t) option, string) result
(** GPA to HPA through the normal VM's EPT. *)

val enclave_reachable :
  Hyperenclave.Absdata.t -> Hyperenclave.Enclave.t ->
  ((Mir.Word.t * Mir.Word.t * Hyperenclave.Flags.t) list, string) result
(** All [(gva_page, hpa_page, flags)] an enclave can reach, i.e. the
    composition of its GPT and EPT page maps. *)

val os_reachable :
  Hyperenclave.Absdata.t ->
  ((Mir.Word.t * Mir.Word.t * Hyperenclave.Flags.t) list, string) result
(** All [(gpa_page, hpa_page, flags)] the primary OS can reach. *)

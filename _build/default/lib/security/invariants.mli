(** The page-table invariants of paper Sec. 5.2, as executable checks
    over the monitor's abstract state.

    - {!elrange_isolation}: ELRANGE addresses of two different enclaves
      never reach the same physical page.
    - {!mbuf_invariant}: a physical page reachable both by an enclave
      and by the primary OS must be a marshalling-buffer page, reached
      through the enclave's marshalling window.
    - {!epcm_invariant}: every enclave mapping into the EPC is recorded
      in the EPCM with the right owner and linear address (no covert
      mappings).
    - {!enclave_invariants}: per enclave — a virtual address maps into
      the EPC iff it is in the ELRANGE; ELRANGE and marshalling window
      are disjoint; no huge pages anywhere in the enclave's tables.
    - {!tables_protected}: no guest mapping (OS or enclave) reaches the
      monitor image or the frame area, so the page tables themselves
      cannot be touched. *)

val elrange_isolation : Hyperenclave.Absdata.t -> (unit, string) result
val mbuf_invariant : Hyperenclave.Absdata.t -> (unit, string) result
val epcm_invariant : Hyperenclave.Absdata.t -> (unit, string) result
val enclave_invariants : Hyperenclave.Absdata.t -> (unit, string) result
val tables_protected : Hyperenclave.Absdata.t -> (unit, string) result

val no_huge : Hyperenclave.Absdata.t -> root:int -> (unit, string) result
(** No huge terminal anywhere in the table rooted at [root]. *)

val all : Hyperenclave.Absdata.t Mirverif.Invariant.t list
(** The five invariants above, in the framework's registry form. *)

val check : Hyperenclave.Absdata.t -> (unit, string) result
(** All invariants, first failure reported. *)

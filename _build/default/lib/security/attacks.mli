(** Malformed page-table designs and the checks that catch them.

    Fig. 5 of the paper shows designs that type-check and run but break
    isolation; Sec. 4.1 describes a real bug (enclave tables shallow-
    copied from the guest's) found during development.  Each scenario
    here builds the corresponding corrupted monitor state — using the
    same low-level primitives a buggy monitor would use — and names the
    invariant expected to reject it.  A healthy state is included so
    the harness shows both directions. *)

type scenario = {
  name : string;
  description : string;
  build : unit -> (Hyperenclave.Absdata.t, string) result;
  expected_violation : string option;
      (** substring of the expected invariant failure; [None] for the
          healthy scenario, which must pass *)
}

val healthy : scenario
(** Two enclaves with pages, built purely through hypercalls. *)

val cross_enclave_alias : scenario
(** Fig. 5 case 1: two ELRANGE addresses of different enclaves reach
    the same EPC page. *)

val outside_elrange : scenario
(** Fig. 5 case 2: an address outside the ELRANGE is mapped into the
    EPC, fooling the enclave into corrupting its own private page. *)

val shallow_copy : scenario
(** Sec. 4.1: the enclave's top-level table contains entries copied
    from a guest-controlled table, so intermediate tables live outside
    the frame area. *)

val mbuf_bypass : scenario
(** A normal-memory page shared with the OS outside the marshalling
    window. *)

val table_exposure : scenario
(** A page-table frame mapped into a guest address space. *)

val all : scenario list

val run : scenario -> (unit, string) result
(** [Ok ()] when the scenario behaves as expected (healthy passes the
    invariants; each attack is rejected by an invariant whose message
    contains [expected_violation]). *)

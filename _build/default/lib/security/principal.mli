(** Security principals.

    The noninterference statement divides the system into principals —
    the primary OS (with its applications, which it fully controls) and
    each enclave (paper Sec. 5).  RustMonitor itself is not a
    principal: it is the trusted base the theorem is about. *)

type t = Os | Enclave of int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t

lib/security/invariants.ml: Absdata Enclave Epcm Geometry Hyperenclave Layout List Mir Mirverif Nested Printf Pt_flat Pte Result

lib/security/transition.mli: Format Hyperenclave Mir Principal State

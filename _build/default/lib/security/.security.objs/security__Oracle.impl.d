lib/security/oracle.ml: Int64 List Mir

lib/security/invariants.mli: Hyperenclave Mirverif

lib/security/noninterference.mli: Mirverif Principal State Transition

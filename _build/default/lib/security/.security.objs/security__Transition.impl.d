lib/security/transition.ml: Absdata Enclave Flags Format Geometry Hypercall Hyperenclave Int64 Layout Mir Nested Phys_mem Principal Printf Result State Tlb

lib/security/tlb.mli: Hyperenclave Mir Principal

lib/security/observation.ml: Absdata Array Bool Flags Format Geometry Hyperenclave Int64 Layout List Mir Nested Option Oracle Phys_mem Principal Result State

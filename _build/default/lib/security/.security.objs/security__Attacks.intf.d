lib/security/attacks.mli: Hyperenclave

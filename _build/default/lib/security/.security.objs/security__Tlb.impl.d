lib/security/tlb.ml: Hyperenclave Int64 Map Mir Principal

lib/security/noninterference.ml: Bool List Mirverif Observation Principal Printf State Transition

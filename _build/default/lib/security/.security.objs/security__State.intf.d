lib/security/state.mli: Format Hyperenclave Mir Oracle Principal Tlb

lib/security/attacks.ml: Absdata Boot Enclave Epcm Flags Format Geometry Hypercall Hyperenclave Int64 Invariants Layout Lazy Mir Printf Pt_flat Pte Result String

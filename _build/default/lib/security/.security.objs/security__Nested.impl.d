lib/security/nested.ml: Absdata Enclave Flags Geometry Hyperenclave List Mir Pt_flat Result

lib/security/state.ml: Array Format Hyperenclave List Mir Oracle Principal Printf Tlb

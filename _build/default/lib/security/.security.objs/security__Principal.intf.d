lib/security/principal.mli: Format Map

lib/security/principal.ml: Format Int Map

lib/security/observation.mli: Format Hyperenclave Mir Principal State

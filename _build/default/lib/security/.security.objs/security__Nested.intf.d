lib/security/nested.mli: Hyperenclave Mir

lib/security/oracle.mli: Mir

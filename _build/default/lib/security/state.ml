module Word = Mir.Word

let nregs = 4

type regs = Word.t array

let zero_regs () = Array.make nregs Word.zero

let regs_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Word.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let pp_regs fmt r =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       Word.pp)
    (Array.to_list r)

type t = {
  mon : Hyperenclave.Absdata.t;
  active : Principal.t;
  regs : regs;
  ctx : regs Principal.Map.t;
  oracles : Oracle.t Principal.Map.t;
  tlb : Tlb.t;
}

let boot layout =
  {
    mon = Hyperenclave.Boot.booted layout;
    active = Principal.Os;
    regs = zero_regs ();
    ctx = Principal.Map.empty;
    oracles = Principal.Map.empty;
    tlb = Tlb.empty;
  }

let saved_ctx st p =
  match Principal.Map.find_opt p st.ctx with
  | Some r -> r
  | None -> zero_regs ()

let oracle_of st p =
  match Principal.Map.find_opt p st.oracles with
  | Some o -> o
  | None -> Oracle.create ()

let take_oracle st p =
  let v, o = Oracle.take (oracle_of st p) in
  (v, { st with oracles = Principal.Map.add p o st.oracles })

let reg st i =
  if i < 0 || i >= nregs then Error (Printf.sprintf "register %d out of range" i)
  else Ok st.regs.(i)

let with_reg st i v =
  if i < 0 || i >= nregs then Error (Printf.sprintf "register %d out of range" i)
  else
    let regs = Array.copy st.regs in
    (regs.(i) <- v;
     Ok { st with regs })

let equal a b =
  Hyperenclave.Absdata.equal a.mon b.mon
  && Principal.equal a.active b.active
  && regs_equal a.regs b.regs
  && Principal.Map.equal regs_equal a.ctx b.ctx
  && Tlb.equal a.tlb b.tlb
  && (* compare streams including never-used defaults *)
  List.for_all
    (fun p -> Oracle.equal_stream (oracle_of a p) (oracle_of b p))
    (List.sort_uniq Principal.compare
       (List.map fst (Principal.Map.bindings a.oracles)
       @ List.map fst (Principal.Map.bindings b.oracles)))

let pp fmt st =
  Format.fprintf fmt "@[<v>active: %a, regs: %a@,%a@]" Principal.pp st.active
    pp_regs st.regs Hyperenclave.Absdata.pp st.mon

(** Data oracles (paper Sec. 5.4).

    Marshalling-buffer contents are declassified: loads from the buffer
    return the next value of an oracle stream instead of reading
    memory, and stores to it are ignored.  The noninterference theorem
    is then quantified over all oracles — including the one that
    replays exactly what other guests wrote — so all real code paths
    are covered without the buffer contents entering any view. *)

type t

val create : ?seed:int -> unit -> t
(** A deterministic stream derived from [seed]. *)

val of_list : Mir.Word.t list -> t
(** A stream replaying the given values (then zeros). *)

val take : t -> Mir.Word.t * t
val position : t -> int
(** How many values have been consumed; part of every principal's
    observation (the schedule is public, the data is not). *)

val equal_stream : t -> t -> bool
(** Same generator and same position: subsequent reads agree. *)

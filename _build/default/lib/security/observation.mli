(** The observation function V(p, σ) (paper Sec. 5.3).

    A principal observes: (1) the CPU registers when it is the active
    principal; (2) its own saved register context; (3) the mappings of
    the page tables that define its address space (for an enclave the
    composed GPT∘EPT view, which includes the immutable marshalling
    mapping; for the OS its EPT view); (4) the contents of reachable
    memory pages that are not shared — marshalling-buffer pages are
    excluded, their data is handled by the oracle; and (5) the oracle
    position (the declassification schedule is public, the data is
    not). *)

type view = {
  is_active : bool;
  cpu_regs : State.regs option;  (** present iff active *)
  saved_regs : State.regs;
  mappings : (Mir.Word.t * Mir.Word.t * Hyperenclave.Flags.t) list;
  pages : (Mir.Word.t * Mir.Word.t list) list;
      (** non-shared reachable pages: page base and word contents *)
  oracle_pos : int;
}

val observe : State.t -> Principal.t -> (view, string) result
(** A principal that does not exist yet (enclave id never created)
    observes only the CPU-facing components. *)

val view_equal : view -> view -> bool
val pp_view : Format.formatter -> view -> unit

val indistinguishable : Principal.t -> State.t -> State.t -> (bool, string) result
(** V(p, σ1) = V(p, σ2). *)

type source = Seeded of int | Replay of Mir.Word.t list

type t = { source : source; pos : int }

let create ?(seed = 0x9E3779B9) () = { source = Seeded seed; pos = 0 }
let of_list values = { source = Replay values; pos = 0 }

(* splitmix64-style hash: deterministic, well-spread values *)
let hash seed n =
  let open Int64 in
  let z = add (of_int seed) (mul (of_int (n + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let take t =
  let v =
    match t.source with
    | Seeded seed -> hash seed t.pos
    | Replay values -> ( match List.nth_opt values t.pos with Some v -> v | None -> 0L)
  in
  (v, { t with pos = t.pos + 1 })

let position t = t.pos

let source_equal a b =
  match (a, b) with
  | Seeded x, Seeded y -> x = y
  | Replay x, Replay y -> List.equal Mir.Word.equal x y
  | (Seeded _ | Replay _), _ -> false

let equal_stream a b = source_equal a.source b.source && a.pos = b.pos

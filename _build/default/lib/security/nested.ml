open Hyperenclave
module Word = Mir.Word

let ( let* ) = Result.bind

let conj_flags (a : Flags.t) (b : Flags.t) =
  {
    Flags.present = a.Flags.present && b.Flags.present;
    write = a.Flags.write && b.Flags.write;
    user = a.Flags.user && b.Flags.user;
    huge = false;
  }

let enclave_translate d (e : Enclave.t) ~va =
  let* gpt = Pt_flat.translate d ~root:e.Enclave.gpt_root ~va in
  match gpt with
  | None -> Ok None
  | Some (gpa, gpt_flags) -> (
      let* ept = Pt_flat.translate d ~root:e.Enclave.ept_root ~va:gpa in
      match ept with
      | None -> Ok None
      | Some (hpa, ept_flags) -> Ok (Some (hpa, conj_flags gpt_flags ept_flags)))

let os_translate d ~gpa =
  match d.Absdata.os_ept_root with
  | None -> Error "system not booted: no OS EPT"
  | Some root -> Pt_flat.translate d ~root ~va:gpa

let enclave_reachable d (e : Enclave.t) =
  let* gpt_maps = Pt_flat.mappings d ~root:e.Enclave.gpt_root in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (va, gpa, gf) :: rest ->
        let* ept = Pt_flat.translate d ~root:e.Enclave.ept_root ~va:gpa in
        (match ept with
        | None -> go acc rest (* gpa not backed: unreachable *)
        | Some (hpa, ef) ->
            go ((va, Geometry.page_base (Absdata.geom d) hpa, conj_flags gf ef) :: acc) rest)
  in
  go [] gpt_maps

let os_reachable d =
  match d.Absdata.os_ept_root with
  | None -> Error "system not booted: no OS EPT"
  | Some root -> Pt_flat.mappings d ~root

(** Page-table entry permission flags, abstracted from bit positions.

    The flat view stores flags inside the 64-bit entry at the
    geometry's bit positions; the tree view (paper Sec. 4.1) stores
    this record.  The two agree through {!encode}/{!decode}. *)

type t = { present : bool; write : bool; user : bool; huge : bool }

val none : t

val present_r : t
(** Present, read-only, supervisor. *)

val present_rw : t
(** Present, writable, supervisor. *)

val user_rw : t
(** Present, writable, user. *)

val user_r : t
(** Present, read-only, user. *)

val with_huge : t -> t

val encode : Geometry.t -> t -> Mir.Word.t
val decode : Geometry.t -> Mir.Word.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all : t list
(** All 16 flag combinations, for exhaustive case generation. *)

module Word = Mir.Word
module Value = Mir.Value

let u64 w = Value.word Mir.Ty.U64 w
let of_int i = Value.int Mir.Ty.U64 i
let of_bool b = Value.Bool b
let unit_v = Value.Unit
let strukt fields = Value.Struct (0, fields)

let ( let* ) = Result.bind

let as_word v = Result.map fst (Value.as_word v)

let arg1 = function
  | [ a ] -> as_word a
  | args -> Error (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let arg2 = function
  | [ a; b ] ->
      let* wa = as_word a in
      let* wb = as_word b in
      Ok (wa, wb)
  | args -> Error (Printf.sprintf "expected 2 arguments, got %d" (List.length args))

let arg3 = function
  | [ a; b; c ] ->
      let* wa = as_word a in
      let* wb = as_word b in
      let* wc = as_word c in
      Ok (wa, wb, wc)
  | args -> Error (Printf.sprintf "expected 3 arguments, got %d" (List.length args))

let arg4 = function
  | [ a; b; c; d ] ->
      let* wa = as_word a in
      let* wb = as_word b in
      let* wc = as_word c in
      let* wd = as_word d in
      Ok (wa, wb, wc, wd)
  | args -> Error (Printf.sprintf "expected 4 arguments, got %d" (List.length args))

let to_int w =
  if Int64.compare w 0L >= 0 && Int64.compare w (Int64.of_int max_int) <= 0 then
    Ok (Int64.to_int w)
  else Error (Printf.sprintf "word %Ld out of int range" w)

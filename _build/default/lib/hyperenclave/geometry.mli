(** Page-table geometry.

    All page-table code is parameterized by a geometry so that the same
    verified functions run on the real x86-64 shape (4 levels, 512
    entries, 4 KiB pages) and on a tiny shape whose state space is
    small enough for bounded-exhaustive checking.

    Entries are always 64-bit words, so a table of [2^index_bits]
    entries occupies [2^(index_bits+3)] bytes; the construction
    invariant [page_shift = index_bits + 3] keeps one table exactly one
    page, as on x86-64 (9 + 3 = 12). *)

type t = private {
  levels : int;  (** number of translation levels; x86-64 has 4 *)
  index_bits : int;  (** index width per level; x86-64 has 9 *)
  page_shift : int;  (** log2 of the page size; x86-64 has 12 *)
  fb_present : int;  (** flag-bit positions within an entry … *)
  fb_write : int;
  fb_user : int;
  fb_huge : int;
}

val x86_64 : t
(** 4 levels, 512 entries, 4 KiB pages, flags at x86 positions
    (P=0, RW=1, US=2, PS=7). *)

val tiny : t
(** 2 levels, 4 entries, 32-byte pages — a 9-bit virtual address space
    whose page tables can be enumerated exhaustively. *)

val make :
  levels:int -> index_bits:int -> fb_present:int -> fb_write:int ->
  fb_user:int -> fb_huge:int -> (t, string) result
(** Checks [page_shift = index_bits + 3], that all flag bits lie below
    [page_shift], and that the virtual address space fits in 64 bits. *)

val entries_per_table : t -> int
val page_size : t -> int
val va_bits : t -> int
(** Total translatable bits: [levels * index_bits + page_shift]. *)

val va_limit : t -> Mir.Word.t
(** First virtual address outside the translatable range. *)

val va_index : t -> level:int -> Mir.Word.t -> int
(** Index into the table at [level] for a virtual address.  Levels
    count down: the root is [levels], the last table is level 1. *)

val page_offset : t -> Mir.Word.t -> Mir.Word.t
val page_base : t -> Mir.Word.t -> Mir.Word.t
(** Align an address down to its page base. *)

val page_aligned : t -> Mir.Word.t -> bool

val level_span_shift : t -> level:int -> int
(** log2 of the region one entry at [level] covers: a level-1 entry
    covers one page, a level-2 entry covers [index_bits] more bits
    (a huge page), etc. *)

val pp : Format.formatter -> t -> unit

(** Page tables, flat (low) specification.

    Operations on page tables as they exist in physical memory: tables
    are frames of the monitor's frame area, entries are 64-bit words
    read and written through {!Phys_mem} (paper Sec. 4.1, "low spec").

    A structural property is enforced during every walk: a non-terminal
    entry must point at a frame {e inside the frame area}.  A table
    that escapes the frame area — e.g. the shallow-copied OS tables of
    the bug discussed in Sec. 4.1, whose level-3 tables lived in
    guest-controlled memory — makes the walk fail, which is the
    executable counterpart of "such a program would be impossible to
    prove in our setting". *)

type walk_result =
  | Missing of int  (** no mapping; absent entry found at this level *)
  | Terminal of {
      level : int;  (** 1 for a normal page; >1 for a huge page *)
      frame : int;  (** table frame holding the terminal entry *)
      index : int;
      entry : Mir.Word.t;
    }

val entry_pa : Absdata.t -> frame:int -> index:int -> (Mir.Word.t, string) result
(** Physical address of entry [index] of table [frame]. *)

val read_entry : Absdata.t -> frame:int -> index:int -> (Mir.Word.t, string) result
val write_entry :
  Absdata.t -> frame:int -> index:int -> Mir.Word.t -> (Absdata.t, string) result

val create_table : Absdata.t -> (Absdata.t * int, string) result
(** Allocate and zero a fresh table frame. *)

val walk : Absdata.t -> root:int -> Mir.Word.t -> (walk_result, string) result
(** Follow existing entries only; never allocates.  Fails on malformed
    tables (next-pointer outside the frame area, va out of range). *)

val walk_alloc :
  Absdata.t -> root:int -> Mir.Word.t -> (Absdata.t * int, string) result
(** Walk to the level-1 table for [va], allocating intermediate tables
    as needed; returns its frame.  Fails if the path crosses a huge
    mapping. *)

val map_page :
  Absdata.t -> root:int -> va:Mir.Word.t -> pa:Mir.Word.t -> Flags.t ->
  (Absdata.t, string) result
(** Install a level-1 mapping.  Requires page-aligned [va]/[pa], [va]
    translatable, [pa] within the 57-bit address field, flags present
    and not huge; fails if already mapped.  Whether [pa] names host- or
    guest-physical memory is the caller's concern (GPTs store GPAs). *)

val map_huge :
  Absdata.t -> root:int -> va:Mir.Word.t -> pa:Mir.Word.t -> level:int ->
  Flags.t -> (Absdata.t, string) result
(** Install a huge mapping at [level > 1] ([pa] aligned to the level
    span).  Enclave tables never contain these (Sec. 5.2); the normal
    VM's EPT may. *)

val unmap_page : Absdata.t -> root:int -> va:Mir.Word.t -> (Absdata.t, string) result
(** Clear the terminal entry covering [va]; fails if unmapped. *)

val query :
  Absdata.t -> root:int -> va:Mir.Word.t ->
  ((Mir.Word.t * Flags.t) option, string) result
(** Mapped physical page base (of [va]'s page) and flags, or [None].
    This is the page-walk the security model reuses for [mem_load] /
    [mem_store] (paper Sec. 5.1). *)

val translate :
  Absdata.t -> root:int -> va:Mir.Word.t ->
  ((Mir.Word.t * Flags.t) option, string) result
(** Like {!query} but returns the full translated byte address
    (page base plus offset). *)

val mappings :
  Absdata.t -> root:int -> ((Mir.Word.t * Mir.Word.t * Flags.t) list, string) result
(** All [(va_page, pa_page, flags)] terminal mappings, in va order;
    huge mappings are expanded to their constituent pages. *)

val table_frames : Absdata.t -> root:int -> (int list, string) result
(** Every frame-area frame reachable from the root (including it),
    in discovery order; fails on malformed tables or sharing (a frame
    reachable twice — tables must form a tree). *)

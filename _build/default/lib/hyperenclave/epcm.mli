(** Enclave Page Cache Map.

    RustMonitor records, for every EPC page, whether it is free or
    owned by an enclave, and at which enclave-linear address it was
    added (paper Sec. 2.1).  The EPCM invariant of Sec. 5.2 requires
    every enclave page-table mapping into the EPC to have a matching
    entry here. *)

type page_state =
  | Free
  | Valid of { eid : int; va : Mir.Word.t }
      (** owned by enclave [eid], mapped at enclave-linear address [va] *)

val page_state_equal : page_state -> page_state -> bool
val pp_page_state : Format.formatter -> page_state -> unit

type t

val create : npages:int -> t
val npages : t -> int
val get : t -> int -> (page_state, string) result
val set : t -> int -> page_state -> (t, string) result

val find_free : t -> int option
(** Lowest free EPC page index. *)

val pages_of_enclave : t -> int -> (int * Mir.Word.t) list
(** [(epc page index, va)] pairs owned by an enclave. *)

val valid_count : t -> int
val free_count : t -> int
val equal : t -> t -> bool
val fold : (int -> page_state -> 'a -> 'a) -> t -> 'a -> 'a

module Word = Mir.Word
module IntMap = Map.Make (Int)

type t = { limit : Word.t; words : Word.t IntMap.t }

let create ~limit =
  if not (Word.equal (Word.extract limit ~lo:0 ~len:3) Word.zero) then
    invalid_arg "Phys_mem.create: limit must be 8-aligned";
  { limit; words = IntMap.empty }

let limit m = m.limit

let word_index m addr =
  if not (Word.equal (Word.extract addr ~lo:0 ~len:3) Word.zero) then
    Error (Printf.sprintf "unaligned 64-bit access at %s" (Word.to_hex addr))
  else if not (Word.lt_u addr m.limit) then
    Error (Printf.sprintf "physical access at %s beyond limit %s" (Word.to_hex addr) (Word.to_hex m.limit))
  else Ok (Int64.to_int (Int64.shift_right_logical addr 3))

let read64 m addr =
  Result.map
    (fun i -> Option.value ~default:Word.zero (IntMap.find_opt i m.words))
    (word_index m addr)

let write64 m addr v =
  Result.map
    (fun i ->
      let words =
        if Word.equal v Word.zero then IntMap.remove i m.words
        else IntMap.add i v m.words
      in
      { m with words })
    (word_index m addr)

let ( let* ) = Result.bind

let zero_range m addr ~bytes_len =
  if bytes_len mod 8 <> 0 then Error "zero_range: length must be 8-aligned"
  else
    let rec go m i =
      if i >= bytes_len then Ok m
      else
        let* m = write64 m (Int64.add addr (Int64.of_int i)) Word.zero in
        go m (i + 8)
    in
    go m 0

let copy_range m ~src ~dst ~bytes_len =
  if bytes_len mod 8 <> 0 then Error "copy_range: length must be 8-aligned"
  else
    let rec go m i =
      if i >= bytes_len then Ok m
      else
        let* v = read64 m (Int64.add src (Int64.of_int i)) in
        let* m = write64 m (Int64.add dst (Int64.of_int i)) v in
        go m (i + 8)
    in
    go m 0

let equal_range a b addr ~bytes_len =
  let rec go i =
    if i >= bytes_len then true
    else
      match
        (read64 a (Int64.add addr (Int64.of_int i)), read64 b (Int64.add addr (Int64.of_int i)))
      with
      | Ok va, Ok vb -> Word.equal va vb && go (i + 8)
      | Error _, _ | _, Error _ -> false
  in
  bytes_len mod 8 = 0 && go 0

let equal a b = Word.equal a.limit b.limit && IntMap.equal Word.equal a.words b.words

let nonzero_words m =
  IntMap.bindings m.words
  |> List.map (fun (i, v) -> (Int64.shift_left (Int64.of_int i) 3, v))

(** Flat physical memory: the bottom-layer view.

    The trusted layer represents physical memory as a flat array of
    64-bit words (paper Sec. 3.4, case 2 / Sec. 4.1).  It is a sparse
    persistent map — unwritten words read as zero, matching the
    zeroed-RAM boot state — so machine states can be snapshotted and
    compared cheaply by the checkers. *)

type t

val create : limit:Mir.Word.t -> t
(** Addressable range is [\[0, limit)]; [limit] must be 8-aligned. *)

val limit : t -> Mir.Word.t

val read64 : t -> Mir.Word.t -> (Mir.Word.t, string) result
(** Fails when the address is unaligned or out of range. *)

val write64 : t -> Mir.Word.t -> Mir.Word.t -> (t, string) result

val zero_range : t -> Mir.Word.t -> bytes_len:int -> (t, string) result
(** Clear [bytes_len] bytes (8-aligned) starting at an 8-aligned
    address; used to scrub freshly allocated frames and EPC pages. *)

val copy_range : t -> src:Mir.Word.t -> dst:Mir.Word.t -> bytes_len:int -> (t, string) result

val equal_range : t -> t -> Mir.Word.t -> bytes_len:int -> bool
(** Word-wise agreement of the two memories on a range; the NI
    observation function compares page contents with this. *)

val equal : t -> t -> bool
val nonzero_words : t -> (Mir.Word.t * Mir.Word.t) list
(** [(address, value)] pairs of all nonzero words, address-ordered. *)

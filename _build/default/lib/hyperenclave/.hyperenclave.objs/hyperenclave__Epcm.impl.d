lib/hyperenclave/epcm.ml: Format Int List Map Mir Option Printf

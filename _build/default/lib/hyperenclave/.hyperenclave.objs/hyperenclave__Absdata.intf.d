lib/hyperenclave/absdata.mli: Enclave Epcm Format Frame_alloc Geometry Layout Map Phys_mem

lib/hyperenclave/pt_flat.ml: Absdata Flags Frame_alloc Geometry Hashtbl Int64 Layout List Mir Phys_mem Printf Pte Result

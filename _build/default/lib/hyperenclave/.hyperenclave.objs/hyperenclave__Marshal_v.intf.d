lib/hyperenclave/marshal_v.mli: Mir

lib/hyperenclave/pt_refine.mli: Absdata Mir Pt_tree

lib/hyperenclave/pt_tree.ml: Array Bool Flags Format Frame_alloc Geometry Hashtbl Int64 Layout List Mir Option Printf Result

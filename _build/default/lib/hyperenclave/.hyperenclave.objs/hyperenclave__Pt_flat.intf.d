lib/hyperenclave/pt_flat.mli: Absdata Flags Mir

lib/hyperenclave/absdata.ml: Enclave Epcm Format Frame_alloc Int Layout List Map Option Phys_mem Printf

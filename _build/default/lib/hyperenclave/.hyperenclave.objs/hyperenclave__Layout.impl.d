lib/hyperenclave/layout.ml: Format Geometry Int64 Mir Printf

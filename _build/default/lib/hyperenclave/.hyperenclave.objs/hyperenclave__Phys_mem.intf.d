lib/hyperenclave/phys_mem.mli: Mir

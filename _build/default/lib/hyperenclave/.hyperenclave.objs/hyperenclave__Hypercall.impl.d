lib/hyperenclave/hypercall.ml: Absdata Enclave Epcm Flags Format Geometry Int64 Layout Mir Phys_mem Pt_flat Result String

lib/hyperenclave/marshal_v.ml: Int64 List Mir Printf Result

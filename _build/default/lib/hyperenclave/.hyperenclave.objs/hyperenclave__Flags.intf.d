lib/hyperenclave/flags.mli: Format Geometry Mir

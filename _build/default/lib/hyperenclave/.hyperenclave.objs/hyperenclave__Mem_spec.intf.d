lib/hyperenclave/mem_spec.mli: Absdata Enclave Layout Mir Mirverif

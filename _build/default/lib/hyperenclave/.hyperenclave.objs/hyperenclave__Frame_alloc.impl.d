lib/hyperenclave/frame_alloc.ml: Int Int64 Printf Set

lib/hyperenclave/pte.ml: Flags Format Geometry Mir

lib/hyperenclave/geometry.ml: Format Int Int64 List Mir Printf

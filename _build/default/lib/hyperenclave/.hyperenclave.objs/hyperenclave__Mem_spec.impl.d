lib/hyperenclave/mem_spec.ml: Absdata Enclave Epcm Frame_alloc Geometry Int64 Layout List Marshal_v Mem_source Mir Mirverif Option Phys_mem Printf Result String

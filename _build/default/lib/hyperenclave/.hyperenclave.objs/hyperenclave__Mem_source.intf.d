lib/hyperenclave/mem_source.mli: Layout

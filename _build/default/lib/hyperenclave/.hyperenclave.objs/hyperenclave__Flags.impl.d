lib/hyperenclave/flags.ml: Bool Format Geometry List Mir

lib/hyperenclave/frame_alloc.mli: Mir

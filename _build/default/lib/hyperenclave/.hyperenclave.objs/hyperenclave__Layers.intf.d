lib/hyperenclave/layers.mli: Absdata Layout Mir Mirverif Rustlite

lib/hyperenclave/enclave.ml: Format Geometry Int64 Mir

lib/hyperenclave/layers.ml: Absdata Hashtbl Layout List Mem_source Mem_spec Mir Mirverif Option Printf Rustlite String Trusted

lib/hyperenclave/enclave.mli: Format Geometry Mir

lib/hyperenclave/pte.mli: Flags Format Geometry Mir

lib/hyperenclave/trusted.ml: Absdata Epcm Frame_alloc Marshal_v Mirverif Phys_mem Result

lib/hyperenclave/mem_source.ml: Geometry Int64 Layout Printf Trusted

lib/hyperenclave/boot.ml: Absdata Flags Geometry Hashtbl Int64 Layout Mir Printf Pt_flat Result

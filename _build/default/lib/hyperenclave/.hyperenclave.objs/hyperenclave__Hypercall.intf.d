lib/hyperenclave/hypercall.mli: Absdata Format Mir

lib/hyperenclave/trusted.mli: Absdata Mirverif

lib/hyperenclave/pt_refine.ml: Absdata Array Flags Frame_alloc Geometry Hashtbl Layout Mir Option Printf Pt_flat Pt_tree Pte Result

lib/hyperenclave/boot.mli: Absdata Layout

lib/hyperenclave/pt_tree.mli: Flags Format Frame_alloc Geometry Layout Mir

lib/hyperenclave/phys_mem.ml: Int Int64 List Map Mir Option Printf Result

lib/hyperenclave/epcm.mli: Format Mir

lib/hyperenclave/geometry.mli: Format Mir

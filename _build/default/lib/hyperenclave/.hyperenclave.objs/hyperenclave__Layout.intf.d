lib/hyperenclave/layout.mli: Format Geometry Mir

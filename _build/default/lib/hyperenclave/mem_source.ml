let status_ok = 0L
let status_invalid = 1L
let status_no_memory = 2L
let status_bad_state = 3L

let walk_found = 0L
let walk_missing = 1L
let walk_malformed = 2L

let lifecycle_created = 0L
let lifecycle_initialized = 1L

let source (layout : Layout.t) =
  let g = layout.Layout.geom in
  let bit i = Int64.shift_left 1L i in
  let page_size = Int64.of_int (Geometry.page_size g) in
  let flags_mask =
    Int64.logor
      (Int64.logor (bit g.Geometry.fb_present) (bit g.Geometry.fb_write))
      (Int64.logor (bit g.Geometry.fb_user) (bit g.Geometry.fb_huge))
  in
  let addr_mask =
    Int64.logand
      (Int64.sub (bit 57) 1L)
      (Int64.lognot (Int64.sub page_size 1L))
  in
  let consts =
    Printf.sprintf
      {|
const LEVELS: u64 = %d;
const INDEX_BITS: u64 = %d;
const PAGE_SHIFT: u64 = %d;
const PAGE_SIZE: u64 = 0x%Lx;
const ENTRIES: u64 = %d;
const VA_LIMIT: u64 = 0x%Lx;

const PRESENT_MASK: u64 = 0x%Lx;
const WRITE_MASK: u64 = 0x%Lx;
const USER_MASK: u64 = 0x%Lx;
const HUGE_MASK: u64 = 0x%Lx;
const FLAGS_MASK: u64 = 0x%Lx;
const ADDR_MASK: u64 = 0x%Lx;
const USER_RW: u64 = 0x%Lx;

const FRAME_BASE: u64 = 0x%Lx;
const NFRAMES: u64 = %d;
const EPC_BASE: u64 = 0x%Lx;
const EPC_PAGES: u64 = %d;
const MBUF_PHYS: u64 = 0x%Lx;
const MBUF_PAGES: u64 = %d;
const PHYS_LIMIT: u64 = 0x%Lx;

const OK: u64 = 0;
const ERR_INVALID: u64 = 1;
const ERR_NOMEM: u64 = 2;
const ERR_BADSTATE: u64 = 3;

const FOUND: u64 = 0;
const MISSING: u64 = 1;
const MALFORMED: u64 = 2;

const EPCM_FREE: u64 = 0;
const EPCM_VALID: u64 = 1;

const CREATED: u64 = 0;
const INITIALIZED: u64 = 1;
|}
      g.Geometry.levels g.Geometry.index_bits g.Geometry.page_shift page_size
      (Geometry.entries_per_table g)
      (Geometry.va_limit g) (bit g.Geometry.fb_present) (bit g.Geometry.fb_write)
      (bit g.Geometry.fb_user) (bit g.Geometry.fb_huge) flags_mask addr_mask
      (Int64.logor (bit g.Geometry.fb_present)
         (Int64.logor (bit g.Geometry.fb_write) (bit g.Geometry.fb_user)))
      layout.Layout.frame_base layout.Layout.frame_count layout.Layout.epc_base
      layout.Layout.epc_pages layout.Layout.mbuf_base layout.Layout.mbuf_pages
      (Layout.phys_limit layout)
  in
  consts ^ Trusted.extern_decls
  ^ {|
// ===================================================================
// Layer 2: page-table entry manipulation (pure functions)
// ===================================================================

fn pte_empty() -> u64 { 0 }
fn pte_is_present(e: u64) -> bool { e & PRESENT_MASK != 0 }
fn pte_is_huge(e: u64) -> bool { e & HUGE_MASK != 0 }
fn pte_is_writable(e: u64) -> bool { e & WRITE_MASK != 0 }
fn pte_is_user(e: u64) -> bool { e & USER_MASK != 0 }
fn pte_addr(e: u64) -> u64 { e & ADDR_MASK }
fn pte_flag_bits(e: u64) -> u64 { e & FLAGS_MASK }
fn pte_make(pa: u64, flags: u64) -> u64 { (pa & ADDR_MASK) | (flags & FLAGS_MASK) }
fn pte_set_flags(e: u64, flags: u64) -> u64 { (e & ADDR_MASK) | (flags & FLAGS_MASK) }

fn page_offset(va: u64) -> u64 { va & (PAGE_SIZE - 1) }
fn page_base(va: u64) -> u64 { va & !(PAGE_SIZE - 1) }
fn is_page_aligned(a: u64) -> bool { a & (PAGE_SIZE - 1) == 0 }
fn va_ok(va: u64) -> bool { va < VA_LIMIT }
fn span_shift(level: u64) -> u64 { PAGE_SHIFT + (level - 1) * INDEX_BITS }
fn va_index(level: u64, va: u64) -> u64 {
    (va >> span_shift(level)) & (ENTRIES - 1)
}

// ===================================================================
// Layer 3: frame allocator (bitmap over the frame area)
// ===================================================================

fn frame_bit_is_set(i: u64) -> bool {
    let word = falloc_bitmap_read(i >> 6);
    (word >> (i & 63)) & 1 == 1
}

fn frame_mark(i: u64) {
    let word = falloc_bitmap_read(i >> 6);
    falloc_bitmap_write(i >> 6, word | (1 << (i & 63)));
}

fn frame_clear(i: u64) {
    let word = falloc_bitmap_read(i >> 6);
    falloc_bitmap_write(i >> 6, word & !(1 << (i & 63)));
}

/* Lowest free frame, or NFRAMES when the pool is exhausted. */
fn frame_alloc() -> u64 {
    let mut i = 0;
    while i < NFRAMES {
        if !frame_bit_is_set(i) {
            frame_mark(i);
            return i;
        }
        i = i + 1;
    }
    NFRAMES
}

fn frame_free(i: u64) -> u64 {
    if i >= NFRAMES { return ERR_INVALID; }
    if !frame_bit_is_set(i) { return ERR_INVALID; }
    frame_clear(i);
    OK
}

fn frame_is_allocated(i: u64) -> bool {
    if i >= NFRAMES { return false; }
    frame_bit_is_set(i)
}

// ===================================================================
// Layer 4: typed entry access over physical memory
// ===================================================================

fn frame_addr(frame: u64) -> u64 { FRAME_BASE + frame * PAGE_SIZE }

fn entry_pa(frame: u64, index: u64) -> u64 { frame_addr(frame) + index * 8 }

fn read_entry(frame: u64, index: u64) -> u64 { phys_read(entry_pa(frame, index)) }

fn write_entry(frame: u64, index: u64, e: u64) {
    phys_write(entry_pa(frame, index), e);
}

// ===================================================================
// Layer 5: whole-table operations
// ===================================================================

fn table_zero(frame: u64) {
    let mut i = 0;
    while i < ENTRIES {
        write_entry(frame, i, pte_empty());
        i = i + 1;
    }
}

/* Allocate and scrub a fresh table; NFRAMES on exhaustion. */
fn create_table() -> u64 {
    let f = frame_alloc();
    if f == NFRAMES { return NFRAMES; }
    table_zero(f);
    f
}

// ===================================================================
// Layer 6: read-only table walk
// ===================================================================

struct WalkRes { status: u64, level: u64, frame: u64, index: u64, entry: u64 }

/* Frame-area index a non-terminal entry points at; NFRAMES when the
   entry escapes the frame area (the malformed-table case that made
   the Sec. 4.1 shallow-copy bug unprovable). */
fn entry_target_frame(e: u64) -> u64 {
    let pa = pte_addr(e);
    if pa < FRAME_BASE { return NFRAMES; }
    let idx = (pa - FRAME_BASE) >> PAGE_SHIFT;
    if idx >= NFRAMES { return NFRAMES; }
    if !frame_is_allocated(idx) { return NFRAMES; }
    idx
}

fn walk(root: u64, va: u64) -> WalkRes {
    let mut frame = root;
    let mut level = LEVELS;
    loop {
        let index = va_index(level, va);
        let e = read_entry(frame, index);
        if !pte_is_present(e) {
            return WalkRes { status: MISSING, level: level, frame: frame, index: index, entry: e };
        }
        if level == 1 {
            return WalkRes { status: FOUND, level: level, frame: frame, index: index, entry: e };
        }
        if pte_is_huge(e) {
            return WalkRes { status: FOUND, level: level, frame: frame, index: index, entry: e };
        }
        let next = entry_target_frame(e);
        if next == NFRAMES {
            return WalkRes { status: MALFORMED, level: level, frame: frame, index: index, entry: e };
        }
        frame = next;
        level = level - 1;
    }
}

// ===================================================================
// Layer 7: allocating walk
// ===================================================================

struct AllocWalkRes { status: u64, frame: u64 }

/* Descend to the level-1 table for va, allocating missing tables. */
fn walk_alloc(root: u64, va: u64) -> AllocWalkRes {
    let mut frame = root;
    let mut level = LEVELS;
    while level > 1 {
        let index = va_index(level, va);
        let e = read_entry(frame, index);
        if pte_is_present(e) {
            if pte_is_huge(e) {
                return AllocWalkRes { status: ERR_INVALID, frame: frame };
            }
            let next = entry_target_frame(e);
            if next == NFRAMES {
                return AllocWalkRes { status: ERR_INVALID, frame: frame };
            }
            frame = next;
        } else {
            let fresh = create_table();
            if fresh == NFRAMES {
                return AllocWalkRes { status: ERR_NOMEM, frame: frame };
            }
            write_entry(frame, index, pte_make(frame_addr(fresh), USER_RW));
            frame = fresh;
        }
        level = level - 1;
    }
    AllocWalkRes { status: OK, frame: frame }
}

// ===================================================================
// Layer 8: installing and removing mappings
// ===================================================================

fn map_page(root: u64, va: u64, pa: u64, flags: u64) -> u64 {
    if !va_ok(va) { return ERR_INVALID; }
    if !is_page_aligned(va) { return ERR_INVALID; }
    if !is_page_aligned(pa) { return ERR_INVALID; }
    if flags & PRESENT_MASK == 0 { return ERR_INVALID; }
    if flags & HUGE_MASK != 0 { return ERR_INVALID; }
    let w = walk_alloc(root, va);
    if w.status != OK { return w.status; }
    let index = va_index(1, va);
    let old = read_entry(w.frame, index);
    if pte_is_present(old) { return ERR_INVALID; }
    write_entry(w.frame, index, pte_make(pa, flags));
    OK
}

fn unmap_page(root: u64, va: u64) -> u64 {
    if !va_ok(va) { return ERR_INVALID; }
    let w = walk(root, va);
    if w.status == MISSING { return ERR_INVALID; }
    if w.status == MALFORMED { return ERR_INVALID; }
    write_entry(w.frame, w.index, pte_empty());
    OK
}

// ===================================================================
// Layer 9: queries (the page walk the CPU model reuses)
// ===================================================================

struct QueryRes { present: u64, pa: u64, flags: u64 }

fn query(root: u64, va: u64) -> QueryRes {
    if !va_ok(va) { return QueryRes { present: 0, pa: 0, flags: 0 }; }
    let w = walk(root, va);
    if w.status != FOUND {
        return QueryRes { present: 0, pa: 0, flags: 0 };
    }
    let span = span_shift(w.level);
    let base = pte_addr(w.entry);
    let within = va & ((1 << span) - 1) & !(PAGE_SIZE - 1);
    QueryRes { present: 1, pa: base | within, flags: pte_flag_bits(w.entry) }
}

fn translate(root: u64, va: u64) -> QueryRes {
    let q = query(root, va);
    if q.present == 0 { return q; }
    QueryRes { present: 1, pa: q.pa | page_offset(va), flags: q.flags }
}

// ===================================================================
// Layer 10: address-space construction
// ===================================================================

struct CreateRes { status: u64, root: u64 }

fn as_create() -> CreateRes {
    let root = create_table();
    if root == NFRAMES { return CreateRes { status: ERR_NOMEM, root: 0 }; }
    CreateRes { status: OK, root: root }
}

/* Loop body hoisted into a helper (retrofit #1, Sec. 2.3). */
fn map_range_one(root: u64, va: u64, pa: u64, flags: u64) -> u64 {
    map_page(root, va, pa, flags)
}

fn map_range(root: u64, va: u64, pa: u64, pages: u64, flags: u64) -> u64 {
    let mut i = 0;
    while i < pages {
        let status = map_range_one(root, va + i * PAGE_SIZE, pa + i * PAGE_SIZE, flags);
        if status != OK { return status; }
        i = i + 1;
    }
    OK
}

// ===================================================================
// Layer 11: EPCM bookkeeping
// ===================================================================

fn epcm_find_free() -> u64 {
    let mut i = 0;
    while i < EPC_PAGES {
        if epcm_state(i) == EPCM_FREE { return i; }
        i = i + 1;
    }
    EPC_PAGES
}

fn epcm_set_valid(page: u64, eid: u64, va: u64) -> u64 {
    if page >= EPC_PAGES { return ERR_INVALID; }
    if epcm_state(page) != EPCM_FREE { return ERR_INVALID; }
    epcm_write(page, EPCM_VALID, eid, va);
    OK
}

fn epcm_clear(page: u64) -> u64 {
    if page >= EPC_PAGES { return ERR_INVALID; }
    if epcm_state(page) != EPCM_VALID { return ERR_INVALID; }
    epcm_write(page, EPCM_FREE, 0, 0);
    OK
}

fn epc_page_addr(page: u64) -> u64 { EPC_BASE + page * PAGE_SIZE }

fn epc_page_zero(page: u64) {
    let base = epc_page_addr(page);
    let mut off = 0;
    while off < PAGE_SIZE {
        phys_write(base + off, 0);
        off = off + 8;
    }
}

// ===================================================================
// Layer 12: marshalling-buffer setup
// ===================================================================

/* One page of the fixed window: identity in the GPT, physical-window
   in the EPT (retrofit #1 helper again). */
fn mbuf_map_one(gpt_root: u64, ept_root: u64, va: u64, hpa: u64) -> u64 {
    let s1 = map_page(gpt_root, va, va, USER_RW);
    if s1 != OK { return s1; }
    map_page(ept_root, va, hpa, USER_RW)
}

fn mbuf_map(gpt_root: u64, ept_root: u64, mbuf_va: u64) -> u64 {
    let mut i = 0;
    while i < MBUF_PAGES {
        let status = mbuf_map_one(gpt_root, ept_root,
                                  mbuf_va + i * PAGE_SIZE,
                                  MBUF_PHYS + i * PAGE_SIZE);
        if status != OK { return status; }
        i = i + 1;
    }
    OK
}

// ===================================================================
// Layer 13: enclave memory operations
// ===================================================================

struct Enclave {
    eid: u64,
    state: u64,
    elrange_base: u64,
    elrange_pages: u64,
    mbuf_va: u64,
    gpt_root: u64,
    ept_root: u64,
}

impl Enclave {
    fn in_elrange(&self, va: u64) -> bool {
        self.elrange_base <= va && va < self.elrange_base + self.elrange_pages * PAGE_SIZE
    }

    /* EADD: pick a free EPC page, install both mappings, scrub the
       page, record ownership. */
    fn add_page(&self, va: u64) -> u64 {
        if self.state != CREATED { return ERR_BADSTATE; }
        if !is_page_aligned(va) { return ERR_INVALID; }
        if !self.in_elrange(va) { return ERR_INVALID; }
        let page = epcm_find_free();
        if page == EPC_PAGES { return ERR_NOMEM; }
        let s1 = map_page(self.gpt_root, va, va, USER_RW);
        if s1 != OK { return s1; }
        let s2 = map_page(self.ept_root, va, epc_page_addr(page), USER_RW);
        if s2 != OK { return s2; }
        epc_page_zero(page);
        epcm_set_valid(page, self.eid, va);
        OK
    }

    /* EREMOVE (extension beyond the paper's verified scope): give an
       EPC page back.  Ownership is checked against the EPCM, both
       mappings are torn down, and the page is scrubbed before it can
       be handed to anyone else. */
    fn remove_page(&self, va: u64) -> u64 {
        if self.state != CREATED { return ERR_BADSTATE; }
        if !is_page_aligned(va) { return ERR_INVALID; }
        if !self.in_elrange(va) { return ERR_INVALID; }
        let q = query(self.ept_root, va);
        if q.present == 0 { return ERR_INVALID; }
        if q.pa < EPC_BASE { return ERR_INVALID; }
        let page = (q.pa - EPC_BASE) >> PAGE_SHIFT;
        if page >= EPC_PAGES { return ERR_INVALID; }
        if epcm_state(page) != EPCM_VALID { return ERR_INVALID; }
        if epcm_eid(page) != self.eid { return ERR_INVALID; }
        if epcm_va(page) != va { return ERR_INVALID; }
        let s1 = unmap_page(self.gpt_root, va);
        if s1 != OK { return s1; }
        let s2 = unmap_page(self.ept_root, va);
        if s2 != OK { return s2; }
        epc_page_zero(page);
        epcm_clear(page);
        OK
    }
}

// ===================================================================
// Layer 14: hypercall entry points (page-table parts)
// ===================================================================

fn ranges_disjoint(base1: u64, pages1: u64, base2: u64, pages2: u64) -> bool {
    base1 + pages1 * PAGE_SIZE <= base2 || base2 + pages2 * PAGE_SIZE <= base1
}

fn range_ok(base: u64, pages: u64) -> bool {
    if pages == 0 { return false; }
    if !is_page_aligned(base) { return false; }
    if !va_ok(base) { return false; }
    base + pages * PAGE_SIZE <= VA_LIMIT
}

struct HcCreateRes { status: u64, gpt_root: u64, ept_root: u64 }

/* ECREATE: validate the layout, build both tables, install the fixed
   marshalling window. */
fn hc_create(elrange_base: u64, elrange_pages: u64, mbuf_va: u64) -> HcCreateRes {
    if !range_ok(elrange_base, elrange_pages) {
        return HcCreateRes { status: ERR_INVALID, gpt_root: 0, ept_root: 0 };
    }
    if !range_ok(mbuf_va, MBUF_PAGES) {
        return HcCreateRes { status: ERR_INVALID, gpt_root: 0, ept_root: 0 };
    }
    if !ranges_disjoint(elrange_base, elrange_pages, mbuf_va, MBUF_PAGES) {
        return HcCreateRes { status: ERR_INVALID, gpt_root: 0, ept_root: 0 };
    }
    let gpt = as_create();
    if gpt.status != OK {
        return HcCreateRes { status: gpt.status, gpt_root: 0, ept_root: 0 };
    }
    let ept = as_create();
    if ept.status != OK {
        return HcCreateRes { status: ept.status, gpt_root: 0, ept_root: 0 };
    }
    let s = mbuf_map(gpt.root, ept.root, mbuf_va);
    if s != OK {
        return HcCreateRes { status: s, gpt_root: 0, ept_root: 0 };
    }
    HcCreateRes { status: OK, gpt_root: gpt.root, ept_root: ept.root }
}
|}

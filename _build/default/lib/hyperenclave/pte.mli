(** Page-table entries as plain 64-bit words (the implementation view).

    An entry packs a physical page address (bits [page_shift..56]) and
    flag bits (within the page-offset bits, positions given by the
    geometry).  These pure functions mirror the entry-manipulation
    methods of the Rust memory module (paper Sec. 4.1). *)

val empty : Mir.Word.t
(** The all-zero, non-present entry. *)

val make : Geometry.t -> pa:Mir.Word.t -> Flags.t -> Mir.Word.t
(** [pa]'s page-offset bits are discarded. *)

val addr : Geometry.t -> Mir.Word.t -> Mir.Word.t
(** The physical page address stored in the entry. *)

val flags : Geometry.t -> Mir.Word.t -> Flags.t
val is_present : Geometry.t -> Mir.Word.t -> bool
val is_huge : Geometry.t -> Mir.Word.t -> bool
val set_flags : Geometry.t -> Mir.Word.t -> Flags.t -> Mir.Word.t
(** Replace the flag bits, keeping the address. *)

val pp : Geometry.t -> Format.formatter -> Mir.Word.t -> unit

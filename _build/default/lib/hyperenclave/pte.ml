module Word = Mir.Word

let empty = Word.zero

(* Address field: bits page_shift .. 56 (57-bit physical space). *)
let addr_len (g : Geometry.t) = 57 - g.page_shift

let make (g : Geometry.t) ~pa f =
  let page_number = Word.extract pa ~lo:g.page_shift ~len:(addr_len g) in
  let e = Word.insert Word.zero ~lo:g.page_shift ~len:(addr_len g) page_number in
  Word.logor e (Flags.encode g f)

let addr (g : Geometry.t) e =
  Word.shift_left Word.W64
    (Word.extract e ~lo:g.page_shift ~len:(addr_len g))
    g.page_shift

let flags (g : Geometry.t) e = Flags.decode g e
let is_present (g : Geometry.t) e = Word.bit e g.fb_present
let is_huge (g : Geometry.t) e = Word.bit e g.fb_huge

let set_flags (g : Geometry.t) e f =
  let masked =
    Word.insert
      (Word.insert e ~lo:0 ~len:g.page_shift Word.zero)
      ~lo:g.page_shift ~len:(addr_len g)
      (Word.extract e ~lo:g.page_shift ~len:(addr_len g))
  in
  Word.logor masked (Flags.encode g f)

let pp g fmt e =
  Format.fprintf fmt "pte{%a %a}" Word.pp (addr g e) Flags.pp (flags g e)

module Word = Mir.Word

type t = { present : bool; write : bool; user : bool; huge : bool }

let none = { present = false; write = false; user = false; huge = false }
let present_r = { none with present = true }
let present_rw = { present_r with write = true }
let user_rw = { present_rw with user = true }
let user_r = { present_r with user = true }
let with_huge f = { f with huge = true }

let encode (g : Geometry.t) f =
  let w = Word.zero in
  let w = Word.set_bit w g.fb_present f.present in
  let w = Word.set_bit w g.fb_write f.write in
  let w = Word.set_bit w g.fb_user f.user in
  Word.set_bit w g.fb_huge f.huge

let decode (g : Geometry.t) w =
  {
    present = Word.bit w g.fb_present;
    write = Word.bit w g.fb_write;
    user = Word.bit w g.fb_user;
    huge = Word.bit w g.fb_huge;
  }

let equal a b =
  Bool.equal a.present b.present && Bool.equal a.write b.write
  && Bool.equal a.user b.user && Bool.equal a.huge b.huge

let pp fmt f =
  Format.fprintf fmt "%c%c%c%c"
    (if f.present then 'P' else '-')
    (if f.write then 'W' else '-')
    (if f.user then 'U' else '-')
    (if f.huge then 'H' else '-')

let to_string f = Format.asprintf "%a" pp f

let all =
  let bools = [ false; true ] in
  List.concat_map
    (fun present ->
      List.concat_map
        (fun write ->
          List.concat_map
            (fun user -> List.map (fun huge -> { present; write; user; huge }) bools)
            bools)
        bools)
    bools

(** The trusted (bottom) layer: axiomatized primitives (paper Sec. 4.2).

    These specifications stand in for code that goes beyond the MIR
    semantics — raw physical memory access behind the unsafe
    pointer-casting functions, and the monitor's global allocator and
    EPCM state (Rust statics reached through [lazy_static]-free
    accessors after the Sec. 2.3 retrofit).  They are expressed
    directly as operations on the abstract state and are what the
    Rustlite memory module's [extern fn]s resolve to. *)

val phys_read : Absdata.t Mirverif.Spec.t
(** [phys_read(pa) -> u64]: 8-aligned, in-range read. *)

val phys_write : Absdata.t Mirverif.Spec.t
(** [phys_write(pa, value)] *)

val falloc_bitmap_read : Absdata.t Mirverif.Spec.t
(** [falloc_bitmap_read(word_index) -> u64] *)

val falloc_bitmap_write : Absdata.t Mirverif.Spec.t
(** [falloc_bitmap_write(word_index, bits)] *)

val epcm_state : Absdata.t Mirverif.Spec.t
(** [epcm_state(page) -> u64]: 0 free, 1 valid. *)

val epcm_eid : Absdata.t Mirverif.Spec.t
val epcm_va : Absdata.t Mirverif.Spec.t

val epcm_write : Absdata.t Mirverif.Spec.t
(** [epcm_write(page, state, eid, va)] *)

val all : Absdata.t Mirverif.Spec.t list

val extern_decls : string
(** The matching Rustlite [extern fn] declarations, prepended to the
    memory module's source. *)

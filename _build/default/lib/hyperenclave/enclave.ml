module Word = Mir.Word

type lifecycle = Created | Initialized

let lifecycle_equal (a : lifecycle) (b : lifecycle) = a = b

let pp_lifecycle fmt = function
  | Created -> Format.pp_print_string fmt "created"
  | Initialized -> Format.pp_print_string fmt "initialized"

type t = {
  eid : int;
  state : lifecycle;
  elrange_base : Word.t;
  elrange_pages : int;
  mbuf_va : Word.t;
  mbuf_pages : int;
  gpt_root : int;
  ept_root : int;
}

let range_limit base pages geom =
  Int64.add base (Int64.mul (Int64.of_int (Geometry.page_size geom)) (Int64.of_int pages))

let elrange_limit e geom = range_limit e.elrange_base e.elrange_pages geom
let mbuf_va_limit e geom = range_limit e.mbuf_va e.mbuf_pages geom

let in_elrange e geom va =
  Word.le_u e.elrange_base va && Word.lt_u va (elrange_limit e geom)

let in_mbuf_va e geom va =
  Word.le_u e.mbuf_va va && Word.lt_u va (mbuf_va_limit e geom)

let ranges_disjoint e geom =
  Word.le_u (elrange_limit e geom) e.mbuf_va
  || Word.le_u (mbuf_va_limit e geom) e.elrange_base

let equal a b =
  a.eid = b.eid
  && lifecycle_equal a.state b.state
  && Word.equal a.elrange_base b.elrange_base
  && a.elrange_pages = b.elrange_pages
  && Word.equal a.mbuf_va b.mbuf_va
  && a.mbuf_pages = b.mbuf_pages
  && a.gpt_root = b.gpt_root
  && a.ept_root = b.ept_root

let pp fmt e =
  Format.fprintf fmt
    "enclave %d (%a): elrange [%a, +%d pages), mbuf va %a (+%d), gpt@%d, ept@%d"
    e.eid pp_lifecycle e.state Word.pp e.elrange_base e.elrange_pages Word.pp
    e.mbuf_va e.mbuf_pages e.gpt_root e.ept_root

(** Physical memory layout.

    During boot HyperEnclave reserves a range of physical memory for
    itself (paper Sec. 2.1): the RustMonitor image, the {e frame area}
    where all monitor-managed page tables are allocated, and the EPC
    (enclave page cache) holding enclave data pages.  The rest is
    normal memory managed by the untrusted primary OS; the marshalling
    buffer is a fixed window inside normal memory.

    The paper hardcodes these constants rather than using
    [lazy_static] (Sec. 2.3 retrofit #4); we do the same, scaled to
    the page-table geometry. *)

type region =
  | Normal  (** untrusted memory, OS-managed (outside the mbuf window) *)
  | Mbuf  (** marshalling-buffer window within normal memory *)
  | Monitor  (** RustMonitor image and private data *)
  | Frame_area  (** monitor-managed page-table frames *)
  | Epc  (** enclave page cache *)
  | Outside  (** beyond physical memory *)

val region_equal : region -> region -> bool
val pp_region : Format.formatter -> region -> unit

type t = private {
  geom : Geometry.t;
  normal_base : Mir.Word.t;
  normal_pages : int;
  mbuf_base : Mir.Word.t;
  mbuf_pages : int;
  monitor_base : Mir.Word.t;
  monitor_pages : int;
  frame_base : Mir.Word.t;
  frame_count : int;
  epc_base : Mir.Word.t;
  epc_pages : int;
}

val default : Geometry.t -> t
(** Normal memory at 0, then monitor, frame area and EPC contiguously;
    sizes scale with the geometry ([tiny] gives a space small enough
    to enumerate). *)

val make :
  geom:Geometry.t -> normal_pages:int -> mbuf_page_index:int -> mbuf_pages:int ->
  monitor_pages:int -> frame_count:int -> epc_pages:int -> (t, string) result

val region_of : t -> Mir.Word.t -> region

val phys_limit : t -> Mir.Word.t
(** First address past the highest region. *)

val frame_addr : t -> int -> Mir.Word.t
(** Byte address of frame [i] of the frame area. *)

val frame_index : t -> Mir.Word.t -> int option
(** Inverse of {!frame_addr} for page-aligned addresses in the frame
    area. *)

val epc_page_addr : t -> int -> Mir.Word.t
val epc_page_index : t -> Mir.Word.t -> int option

val in_secure : t -> Mir.Word.t -> bool
(** Monitor, frame area or EPC. *)

val mbuf_limit : t -> Mir.Word.t
val pp : Format.formatter -> t -> unit

(** Frame allocator for the monitor's frame area.

    HyperEnclave allocates every page-table frame from a private pool
    in secure memory; the allocator is a bitmap returning the
    lowest-indexed free frame.  This module is the {e specification};
    the Rustlite implementation in {!Mem_module} is checked against
    it. *)

type t

val create : nframes:int -> t
val nframes : t -> int

val alloc : t -> (t * int, string) result
(** Lowest free frame; fails when the pool is exhausted. *)

val free : t -> int -> (t, string) result
(** Fails on out-of-range or double free. *)

val is_allocated : t -> int -> bool

val bitmap_words : t -> int
(** Number of 64-bit words in the bitmap view, [ceil (nframes / 64)]. *)

val bitmap_word : t -> int -> (Mir.Word.t, string) result
(** The bitmap as raw words (bit [i mod 64] of word [i / 64] set iff
    frame [i] is allocated) — the representation the trusted layer
    exposes to the Rustlite allocator code. *)

val set_bitmap_word : t -> int -> Mir.Word.t -> (t, string) result
(* fails if bits beyond [nframes] are set *)
val allocated_count : t -> int
val free_count : t -> int
val allocated_list : t -> int list
val equal : t -> t -> bool

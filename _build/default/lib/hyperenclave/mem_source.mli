(** The HyperEnclave memory module, in Rustlite.

    This is the code under verification: the re-implementation of the
    monitor's memory subsystem (frame allocation, page-table entry
    manipulation, table walks, mapping, the EPCM, marshalling-buffer
    setup, and the page-table parts of the ECREATE/EADD hypercalls) in
    the retrofitted Rust style of paper Sec. 2.3 — helper functions
    instead of large loop bodies, integer constants instead of
    value-carrying enums, hardcoded memory-layout constants.

    The layout constants are interpolated per geometry so the same
    code runs on the tiny (exhaustively checkable) and the x86-64
    shapes. *)

val source : Layout.t -> string
(** Full Rustlite source, including the trusted [extern] block. *)

val status_ok : int64
val status_invalid : int64
val status_no_memory : int64
val status_bad_state : int64

val walk_found : int64
val walk_missing : int64
val walk_malformed : int64
(** [status] field values of the [WalkRes] struct. *)

val lifecycle_created : int64
val lifecycle_initialized : int64
(** Encoding of {!Enclave.lifecycle} in the [Enclave] struct's [state]
    field. *)

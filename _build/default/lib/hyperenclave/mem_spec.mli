(** Low specifications of the memory module.

    One functional specification per Rustlite function of
    {!Mem_source}, stated over the abstract state — the 'low specs' of
    paper Sec. 4.3, close enough to the code for per-function
    conformance checking while already hiding the MIR execution.  The
    flat-to-tree refinement (Sec. 4.1) then relates a subset of these
    to the {!Pt_tree} high view; {!Pt_flat} plays the intermediate
    role.

    Specs are keyed by the exact MIR symbol names, [Enclave::add_page]
    included.  A spec returning [Error] is undefined on that input
    (precondition violation): the corresponding code execution faults
    there too, and conformance checks skip the case. *)

type t = { layer : string; spec : Absdata.t Mirverif.Spec.t }

val all : Layout.t -> t list
(** Every function's spec, tagged with the layer that owns it. *)

val layer_names : string list
(** Bottom-first order of the 15 layers, ["Trusted"] to
    ["IsolationModel"]. *)

val find : Layout.t -> string -> Absdata.t Mirverif.Spec.t option

val enclave_to_value : Enclave.t -> 'abs Mir.Value.t
(** Encode an {!Enclave.t} as the [Enclave] struct the Rustlite code
    declares (field order matters). *)

val walk_res :
  status:int64 -> level:int -> frame:int -> index:int -> entry:Mir.Word.t ->
  'abs Mir.Value.t
(** Build a [WalkRes] struct value. *)

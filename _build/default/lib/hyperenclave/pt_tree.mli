(** Page tables, tree-shaped (high) specification.

    The high spec nests page tables directly inside entries instead of
    storing indirect physical pointers (paper Sec. 4.1): an entry is
    either absent, a terminal mapping, or the next-level table itself.
    The physical frame that stores each table is kept as {e ghost}
    data so the refinement relation to the flat view can be stated.

    The tree shape makes aliasing between tables unrepresentable —
    installing a mapping is a local change by construction — which is
    why the paper's invariant proofs work on this view. *)

type node =
  | Term of { pa : Mir.Word.t; flags : Flags.t }
      (** terminal mapping; at level 1 a page, above it a huge page *)
  | Table of { frame : int; entries : node option array }

type state = {
  geom : Geometry.t;
  layout : Layout.t;
  falloc : Frame_alloc.t;  (** ghost allocator, kept in lock-step with the low view *)
  root : node;  (** always a [Table] *)
}

val root_frame : state -> (int, string) result

val create : Geometry.t -> Layout.t -> Frame_alloc.t -> (state, string) result
(** Allocate a fresh empty root table. *)

val map_page :
  state -> va:Mir.Word.t -> pa:Mir.Word.t -> Flags.t -> (state, string) result

val map_huge :
  state -> va:Mir.Word.t -> pa:Mir.Word.t -> level:int -> Flags.t ->
  (state, string) result

val unmap_page : state -> va:Mir.Word.t -> (state, string) result

val query :
  state -> va:Mir.Word.t -> ((Mir.Word.t * Flags.t) option, string) result

val translate :
  state -> va:Mir.Word.t -> ((Mir.Word.t * Flags.t) option, string) result

val mappings : state -> (Mir.Word.t * Mir.Word.t * Flags.t) list
(** All [(va_page, pa_page, flags)], va-ordered, huge mappings expanded. *)

val wf : state -> (unit, string) result
(** Well-formedness: table frames distinct, allocated, and in the frame
    area; terminal [pa]s aligned to their level span; the huge flag set
    exactly on terminals above level 1 (the paper's [unused_inv] is
    unrepresentable by construction: an absent entry simply is [None]). *)

val node_equal : node -> node -> bool
val equal : state -> state -> bool
val pp : Format.formatter -> state -> unit

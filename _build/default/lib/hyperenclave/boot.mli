(** System boot.

    At boot RustMonitor reserves secure memory and builds the normal
    VM's EPT: an identity mapping of all normal memory (including the
    marshalling-buffer window) with user permissions, using huge pages
    where alignment allows.  Nothing in secure memory is ever mapped,
    which is what confines the untrusted OS — no matter how it edits
    its own guest page tables (paper Sec. 2.1). *)

val boot : Layout.t -> (Absdata.t, string) result

val booted : Layout.t -> Absdata.t
(** Memoized {!boot}; raises on failure.  State values are persistent,
    so sharing the booted state across generated test cases is safe. *)

val os_ept_root : Absdata.t -> (int, string) result
(** The normal VM's EPT root, failing before boot. *)

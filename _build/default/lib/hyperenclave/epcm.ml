module Word = Mir.Word
module IntMap = Map.Make (Int)

type page_state = Free | Valid of { eid : int; va : Word.t }

let page_state_equal a b =
  match (a, b) with
  | Free, Free -> true
  | Valid x, Valid y -> x.eid = y.eid && Word.equal x.va y.va
  | (Free | Valid _), _ -> false

let pp_page_state fmt = function
  | Free -> Format.pp_print_string fmt "free"
  | Valid { eid; va } -> Format.fprintf fmt "valid(eid=%d, va=%a)" eid Word.pp va

(* Sparse: absent entries are Free. *)
type t = { npages : int; entries : page_state IntMap.t }

let create ~npages =
  if npages <= 0 then invalid_arg "Epcm.create: need at least one page";
  { npages; entries = IntMap.empty }

let npages m = m.npages

let get m i =
  if i < 0 || i >= m.npages then Error (Printf.sprintf "EPCM index %d out of range" i)
  else Ok (Option.value ~default:Free (IntMap.find_opt i m.entries))

let set m i st =
  if i < 0 || i >= m.npages then Error (Printf.sprintf "EPCM index %d out of range" i)
  else
    let entries =
      match st with
      | Free -> IntMap.remove i m.entries
      | Valid _ -> IntMap.add i st m.entries
    in
    Ok { m with entries }

let find_free m =
  let rec go i =
    if i >= m.npages then None
    else if IntMap.mem i m.entries then go (i + 1)
    else Some i
  in
  go 0

let pages_of_enclave m eid =
  IntMap.bindings m.entries
  |> List.filter_map (fun (i, st) ->
         match st with
         | Valid v when v.eid = eid -> Some (i, v.va)
         | Valid _ | Free -> None)

let valid_count m = IntMap.cardinal m.entries
let free_count m = m.npages - IntMap.cardinal m.entries

let equal a b = a.npages = b.npages && IntMap.equal page_state_equal a.entries b.entries

let fold f m init =
  let acc = ref init in
  for i = 0 to m.npages - 1 do
    acc := f i (Option.value ~default:Free (IntMap.find_opt i m.entries)) !acc
  done;
  !acc

module Word = Mir.Word

let ( let* ) = Result.bind

type walk_result =
  | Missing of int
  | Terminal of { level : int; frame : int; index : int; entry : Word.t }

let check_frame (d : Absdata.t) frame =
  if frame < 0 || frame >= d.layout.Layout.frame_count then
    Error (Printf.sprintf "table frame %d outside the frame area" frame)
  else if not (Frame_alloc.is_allocated d.falloc frame) then
    Error (Printf.sprintf "table frame %d is not allocated" frame)
  else Ok ()

let entry_pa (d : Absdata.t) ~frame ~index =
  let g = Absdata.geom d in
  let* () = check_frame d frame in
  if index < 0 || index >= Geometry.entries_per_table g then
    Error (Printf.sprintf "entry index %d out of range" index)
  else Ok (Int64.add (Layout.frame_addr d.layout frame) (Int64.of_int (8 * index)))

let read_entry d ~frame ~index =
  let* pa = entry_pa d ~frame ~index in
  Phys_mem.read64 d.phys pa

let write_entry (d : Absdata.t) ~frame ~index e =
  let* pa = entry_pa d ~frame ~index in
  let* phys = Phys_mem.write64 d.phys pa e in
  Ok { d with Absdata.phys }

let create_table (d : Absdata.t) =
  let g = Absdata.geom d in
  let* falloc, frame = Frame_alloc.alloc d.falloc in
  let d = { d with Absdata.falloc } in
  let* phys =
    Phys_mem.zero_range d.phys (Layout.frame_addr d.layout frame)
      ~bytes_len:(Geometry.page_size g)
  in
  Ok ({ d with Absdata.phys }, frame)

let check_va (d : Absdata.t) va =
  let g = Absdata.geom d in
  if Word.lt_u va (Geometry.va_limit g) then Ok ()
  else Error (Printf.sprintf "virtual address %s not translatable" (Word.to_hex va))

(* Follow the entry of [frame] at [level] for [va]; caller guarantees
   level >= 1.  Returns the entry's coordinates and value. *)
let entry_at (d : Absdata.t) ~frame ~level va =
  let g = Absdata.geom d in
  let index = Geometry.va_index g ~level va in
  let* entry = read_entry d ~frame ~index in
  Ok (index, entry)

let next_frame (d : Absdata.t) entry =
  let g = Absdata.geom d in
  let pa = Pte.addr g entry in
  match Layout.frame_index d.layout pa with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf
           "non-terminal entry points at %s, outside the frame area: malformed \
            page table" (Word.to_hex pa))

let walk (d : Absdata.t) ~root va =
  let g = Absdata.geom d in
  let* () = check_va d va in
  let* () = check_frame d root in
  let rec go frame level =
    let* index, entry = entry_at d ~frame ~level va in
    if not (Pte.is_present g entry) then Ok (Missing level)
    else if level = 1 || Pte.is_huge g entry then
      Ok (Terminal { level; frame; index; entry })
    else
      let* next = next_frame d entry in
      let* () = check_frame d next in
      go next (level - 1)
  in
  go root g.Geometry.levels

let intermediate_flags = Flags.user_rw

let walk_alloc (d : Absdata.t) ~root va =
  let g = Absdata.geom d in
  let* () = check_va d va in
  let* () = check_frame d root in
  let rec go d frame level =
    if level = 1 then Ok (d, frame)
    else
      let* index, entry = entry_at d ~frame ~level va in
      if Pte.is_present g entry then
        if Pte.is_huge g entry then
          Error (Printf.sprintf "huge mapping at level %d blocks the walk" level)
        else
          let* next = next_frame d entry in
          let* () = check_frame d next in
          go d next (level - 1)
      else
        let* d, next = create_table d in
        let next_pa = Layout.frame_addr d.layout next in
        let* d =
          write_entry d ~frame ~index (Pte.make g ~pa:next_pa intermediate_flags)
        in
        go d next (level - 1)
  in
  go d root g.Geometry.levels

let check_terminal_flags (f : Flags.t) =
  if not f.Flags.present then Error "terminal mapping must be present"
  else Ok ()

let map_page (d : Absdata.t) ~root ~va ~pa flags =
  let g = Absdata.geom d in
  let* () = check_va d va in
  if not (Geometry.page_aligned g va) then Error "map_page: va not page-aligned"
  else if not (Geometry.page_aligned g pa) then Error "map_page: pa not page-aligned"
  else if not (Word.lt_u pa (Word.shift_left Word.W64 1L 57)) then
    (* the entry's address field holds 57 bits; what the target means
       (host- vs guest-physical) is the caller's business, like on real
       hardware *)
    Error "map_page: pa exceeds the address-field capacity"
  else
    let* () = check_terminal_flags flags in
    if flags.Flags.huge then Error "map_page: level-1 mapping cannot be huge"
    else
      let* d, l1 = walk_alloc d ~root va in
      let index = Geometry.va_index g ~level:1 va in
      let* old_entry = read_entry d ~frame:l1 ~index in
      if Pte.is_present g old_entry then
        Error (Printf.sprintf "va %s already mapped" (Word.to_hex va))
      else write_entry d ~frame:l1 ~index (Pte.make g ~pa flags)

let map_huge (d : Absdata.t) ~root ~va ~pa ~level flags =
  let g = Absdata.geom d in
  let* () = check_va d va in
  if level <= 1 || level > g.Geometry.levels then
    Error (Printf.sprintf "map_huge: invalid level %d" level)
  else
    let span = Geometry.level_span_shift g ~level in
    if not (Word.equal (Word.extract va ~lo:0 ~len:span) Word.zero) then
      Error "map_huge: va not span-aligned"
    else if not (Word.equal (Word.extract pa ~lo:0 ~len:span) Word.zero) then
      Error "map_huge: pa not span-aligned"
    else
      let* () = check_terminal_flags flags in
      (* Walk (allocating) down to [level]. *)
      let rec go d frame l =
        if l = level then Ok (d, frame)
        else
          let* index, entry = entry_at d ~frame ~level:l va in
          if Pte.is_present g entry then
            if Pte.is_huge g entry then
              Error (Printf.sprintf "huge mapping at level %d blocks the walk" l)
            else
              let* next = next_frame d entry in
              go d next (l - 1)
          else
            let* d, next = create_table d in
            let next_pa = Layout.frame_addr d.layout next in
            let* d =
              write_entry d ~frame ~index (Pte.make g ~pa:next_pa intermediate_flags)
            in
            go d next (l - 1)
      in
      let* () = check_frame d root in
      let* d, frame = go d root g.Geometry.levels in
      let index = Geometry.va_index g ~level va in
      let* old_entry = read_entry d ~frame ~index in
      if Pte.is_present g old_entry then
        Error (Printf.sprintf "va %s already mapped at level %d" (Word.to_hex va) level)
      else
        write_entry d ~frame ~index
          (Pte.make g ~pa (Flags.with_huge flags))

let unmap_page (d : Absdata.t) ~root ~va =
  let* result = walk d ~root va in
  match result with
  | Missing _ -> Error (Printf.sprintf "va %s not mapped" (Word.to_hex va))
  | Terminal { frame; index; _ } -> write_entry d ~frame ~index Pte.empty

let query (d : Absdata.t) ~root ~va =
  let g = Absdata.geom d in
  let* result = walk d ~root va in
  match result with
  | Missing _ -> Ok None
  | Terminal { level; entry; _ } ->
      let span = Geometry.level_span_shift g ~level in
      let base = Pte.addr g entry in
      (* page of [va] within the (possibly huge) span *)
      let page_bits =
        Word.shift_left Word.W64
          (Word.extract va ~lo:g.Geometry.page_shift ~len:(span - g.Geometry.page_shift))
          g.Geometry.page_shift
      in
      Ok (Some (Word.logor base page_bits, Pte.flags g entry))

let translate (d : Absdata.t) ~root ~va =
  let g = Absdata.geom d in
  let* q = query d ~root ~va in
  match q with
  | None -> Ok None
  | Some (page, flags) ->
      Ok (Some (Word.logor page (Geometry.page_offset g va), flags))

let mappings (d : Absdata.t) ~root =
  let g = Absdata.geom d in
  let* () = check_frame d root in
  let page = Int64.of_int (Geometry.page_size g) in
  let rec table frame level va_base acc =
    let rec entries index acc =
      if index >= Geometry.entries_per_table g then Ok acc
      else
        let* entry = read_entry d ~frame ~index in
        let va =
          Int64.add va_base
            (Int64.shift_left (Int64.of_int index) (Geometry.level_span_shift g ~level))
        in
        let* acc =
          if not (Pte.is_present g entry) then Ok acc
          else if level = 1 || Pte.is_huge g entry then (
            (* expand a huge mapping into pages *)
            let span = Geometry.level_span_shift g ~level in
            let npages = 1 lsl (span - g.Geometry.page_shift) in
            let base = Pte.addr g entry in
            let flags = Pte.flags g entry in
            let acc = ref acc in
            for i = npages - 1 downto 0 do
              let off = Int64.mul page (Int64.of_int i) in
              acc := (Int64.add va off, Int64.add base off, flags) :: !acc
            done;
            Ok !acc)
          else
            let* next = next_frame d entry in
            let* () = check_frame d next in
            table next (level - 1) va acc
        in
        entries (index + 1) acc
    in
    entries 0 acc
  in
  let* acc = table root g.Geometry.levels 0L [] in
  Ok (List.rev acc)

let table_frames (d : Absdata.t) ~root =
  let g = Absdata.geom d in
  let* () = check_frame d root in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let visit frame =
    if Hashtbl.mem seen frame then
      Error (Printf.sprintf "table frame %d reachable twice: tables must form a tree" frame)
    else (
      Hashtbl.add seen frame ();
      order := frame :: !order;
      Ok ())
  in
  let rec table frame level =
    let* () = visit frame in
    if level = 1 then Ok ()
    else
      let rec entries index =
        if index >= Geometry.entries_per_table g then Ok ()
        else
          let* entry = read_entry d ~frame ~index in
          let* () =
            if Pte.is_present g entry && not (Pte.is_huge g entry) then
              let* next = next_frame d entry in
              let* () = check_frame d next in
              table next (level - 1)
            else Ok ()
          in
          entries (index + 1)
      in
      entries 0
  in
  let* () = table root g.Geometry.levels in
  Ok (List.rev !order)

(** The refinement relation between flat and tree page tables.

    [R d st] holds when the page tables rooted at [st]'s ghost root
    frame, viewed as trees, agree entry-by-entry with the words stored
    in [d]'s flat physical memory (paper Sec. 4.1).  [R] is defined via
    [R_pte], which relates one tree entry to one 64-bit word and
    recurses through next-level tables.

    {!abstract} is the abstraction function: it rebuilds the tree view
    from the flat memory and is the witness that every well-formed flat
    table has a unique related tree.  A flat table whose intermediate
    entries escape the frame area (the Sec. 4.1 shallow-copy bug) has
    {e no} related tree: {!abstract} fails on it. *)

val r_pte :
  Absdata.t -> level:int -> Mir.Word.t -> Pt_tree.node option ->
  (unit, string) result
(** Relate the flat entry word (found in a table at [level]) to the
    tree entry. *)

val relate : Absdata.t -> root:int -> Pt_tree.state -> bool
(** The full relation R: ghost allocator agreement, root agreement and
    recursive [r_pte] agreement. *)

val relate_explain : Absdata.t -> root:int -> Pt_tree.state -> (unit, string) result

val abstract : Absdata.t -> root:int -> (Pt_tree.state, string) result
(** Rebuild the tree view from flat memory; fails on malformed tables. *)

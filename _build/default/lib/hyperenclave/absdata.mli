(** The monitor's abstract state (the CCAL "abstract data").

    This is the ['abs] every layer's specifications act on: the flat
    physical memory (where page tables live), the frame allocator, the
    EPCM, per-enclave metadata, and the normal VM's EPT root.  The
    security model's machine states wrap this record with the
    CPU-visible pieces (registers, active principal). *)

module IntMap : Map.S with type key = int

type t = {
  layout : Layout.t;
  phys : Phys_mem.t;
  falloc : Frame_alloc.t;
  epcm : Epcm.t;
  enclaves : Enclave.t IntMap.t;
  next_eid : int;
  os_ept_root : int option;  (** normal VM EPT, installed by boot *)
}

val create : Layout.t -> t
(** Pristine state: zeroed memory, empty allocator and EPCM, no
    enclaves, no OS EPT (see {!Boot.boot} for the booted state). *)

val geom : t -> Geometry.t

val find_enclave : t -> int -> (Enclave.t, string) result
val update_enclave : t -> Enclave.t -> t
val enclave_ids : t -> int list
val enclave_count : t -> int

val equal : t -> t -> bool
(** Structural equality of the full abstract state, used as the
    abstract-state equivalence in refinement checks. *)

val pp : Format.formatter -> t -> unit

module IntSet = Set.Make (Int)

type t = { nframes : int; allocated : IntSet.t }

let create ~nframes =
  if nframes <= 0 then invalid_arg "Frame_alloc.create: need at least one frame";
  { nframes; allocated = IntSet.empty }

let nframes a = a.nframes

let alloc a =
  let rec find i =
    if i >= a.nframes then Error "frame pool exhausted"
    else if IntSet.mem i a.allocated then find (i + 1)
    else Ok ({ a with allocated = IntSet.add i a.allocated }, i)
  in
  find 0

let free a i =
  if i < 0 || i >= a.nframes then
    Error (Printf.sprintf "free of out-of-range frame %d" i)
  else if not (IntSet.mem i a.allocated) then
    Error (Printf.sprintf "double free of frame %d" i)
  else Ok { a with allocated = IntSet.remove i a.allocated }

let is_allocated a i = IntSet.mem i a.allocated

let bitmap_words a = (a.nframes + 63) / 64

let bitmap_word a w =
  if w < 0 || w >= bitmap_words a then
    Error (Printf.sprintf "bitmap word %d out of range" w)
  else
    Ok
      (IntSet.fold
         (fun i acc ->
           if i / 64 = w then Int64.logor acc (Int64.shift_left 1L (i mod 64))
           else acc)
         a.allocated 0L)

let set_bitmap_word a w v =
  if w < 0 || w >= bitmap_words a then
    Error (Printf.sprintf "bitmap word %d out of range" w)
  else
    let lo = w * 64 in
    let hi = min a.nframes (lo + 64) in
    (* bits beyond nframes must stay clear *)
    let excess =
      if hi - lo >= 64 then 0L
      else Int64.shift_right_logical v (hi - lo)
    in
    if not (Int64.equal excess 0L) then
      Error "bitmap write sets bits beyond the frame pool"
    else
      let cleared =
        IntSet.filter (fun i -> i / 64 <> w) a.allocated
      in
      let rec add i acc =
        if i >= hi then acc
        else
          add (i + 1)
            (if Int64.equal (Int64.logand (Int64.shift_right_logical v (i - lo)) 1L) 1L
             then IntSet.add i acc
             else acc)
      in
      Ok { a with allocated = add lo cleared }
let allocated_count a = IntSet.cardinal a.allocated
let free_count a = a.nframes - IntSet.cardinal a.allocated
let allocated_list a = IntSet.elements a.allocated
let equal a b = a.nframes = b.nframes && IntSet.equal a.allocated b.allocated

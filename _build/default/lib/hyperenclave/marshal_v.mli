(** Encoding between OCaml data and MIR values at layer interfaces.

    Specifications receive and return {!Mir.Value.t}; these helpers
    decode argument lists and build the return shapes the Rustlite
    code produces (plain [u64]s, [bool]s, and field-ordered structs). *)

val u64 : Mir.Word.t -> 'abs Mir.Value.t
val of_int : int -> 'abs Mir.Value.t
val of_bool : bool -> 'abs Mir.Value.t
val unit_v : 'abs Mir.Value.t
val strukt : 'abs Mir.Value.t list -> 'abs Mir.Value.t

val arg1 : 'abs Mir.Value.t list -> (Mir.Word.t, string) result
val arg2 : 'abs Mir.Value.t list -> (Mir.Word.t * Mir.Word.t, string) result
val arg3 :
  'abs Mir.Value.t list -> (Mir.Word.t * Mir.Word.t * Mir.Word.t, string) result
val arg4 :
  'abs Mir.Value.t list ->
  (Mir.Word.t * Mir.Word.t * Mir.Word.t * Mir.Word.t, string) result

val to_int : Mir.Word.t -> (int, string) result
(** Word to non-negative OCaml int. *)

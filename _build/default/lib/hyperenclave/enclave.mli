(** Per-enclave metadata held by RustMonitor.

    Both the guest page table (GPT) and the extended page table (EPT)
    of an enclave are monitor-managed (paper Sec. 2.1), so their root
    frames are part of the monitor's state.  The ELRANGE is the
    enclave's linear address window for EPC pages; the marshalling
    buffer window is the only address range it shares with its host
    application, and its mapping is fixed at creation time. *)

type lifecycle =
  | Created  (** after [hc_create]; pages may still be added *)
  | Initialized  (** after [hc_init_done] (EINIT); layout is frozen *)

val lifecycle_equal : lifecycle -> lifecycle -> bool
val pp_lifecycle : Format.formatter -> lifecycle -> unit

type t = {
  eid : int;
  state : lifecycle;
  elrange_base : Mir.Word.t;  (** page-aligned virtual base *)
  elrange_pages : int;
  mbuf_va : Mir.Word.t;  (** virtual base of the marshalling window *)
  mbuf_pages : int;
  gpt_root : int;  (** frame-area index of the GPT root table *)
  ept_root : int;  (** frame-area index of the EPT root table *)
}

val in_elrange : t -> Geometry.t -> Mir.Word.t -> bool
val in_mbuf_va : t -> Geometry.t -> Mir.Word.t -> bool
val elrange_limit : t -> Geometry.t -> Mir.Word.t
val mbuf_va_limit : t -> Geometry.t -> Mir.Word.t

val ranges_disjoint : t -> Geometry.t -> bool
(** ELRANGE and marshalling window do not overlap (one of the enclave
    invariants of Sec. 5.2). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Word = Mir.Word

let ( let* ) = Result.bind

type status = Success | Invalid_param | No_memory | Bad_state

let status_code = function
  | Success -> 0L
  | Invalid_param -> 1L
  | No_memory -> 2L
  | Bad_state -> 3L

let status_of_code = function
  | 0L -> Some Success
  | 1L -> Some Invalid_param
  | 2L -> Some No_memory
  | 3L -> Some Bad_state
  | _ -> None

let status_equal (a : status) (b : status) = a = b

let pp_status fmt s =
  Format.pp_print_string fmt
    (match s with
    | Success -> "success"
    | Invalid_param -> "invalid-param"
    | No_memory -> "no-memory"
    | Bad_state -> "bad-state")

type 'a outcome = { d : Absdata.t; status : status; value : 'a }

let fail d status value = { d; status; value }

let gpa_of_va va = va

(* Distinguish resource exhaustion from argument errors so the right
   status code comes back. *)
let run_alloc d0 computation ~value_on_error ~ok =
  match computation with
  | Ok result -> ok result
  | Error _ -> fail d0 No_memory value_on_error

let range_ok geom base pages =
  let page = Int64.of_int (Geometry.page_size geom) in
  pages > 0
  && Geometry.page_aligned geom base
  && (* no wraparound, end within the translatable space *)
  Word.le_u
    (Int64.add base (Int64.mul page (Int64.of_int pages)))
    (Geometry.va_limit geom)
  && Word.lt_u base (Geometry.va_limit geom)

let ranges_disjoint geom base1 pages1 base2 pages2 =
  let page = Int64.of_int (Geometry.page_size geom) in
  let limit1 = Int64.add base1 (Int64.mul page (Int64.of_int pages1)) in
  let limit2 = Int64.add base2 (Int64.mul page (Int64.of_int pages2)) in
  Word.le_u limit1 base2 || Word.le_u limit2 base1

let create (d0 : Absdata.t) ~elrange_base ~elrange_pages ~mbuf_va =
  let geom = Absdata.geom d0 in
  let layout = d0.Absdata.layout in
  let mbuf_pages = layout.Layout.mbuf_pages in
  if
    (not (range_ok geom elrange_base elrange_pages))
    || not (range_ok geom mbuf_va mbuf_pages)
  then fail d0 Invalid_param 0
  else if not (ranges_disjoint geom elrange_base elrange_pages mbuf_va mbuf_pages)
  then fail d0 Invalid_param 0
  else
    let build =
      let* d, gpt_root = Pt_flat.create_table d0 in
      let* d, ept_root = Pt_flat.create_table d in
      (* Fixed marshalling-buffer mapping: identity in the GPT, window
         onto the physical mbuf region in the EPT. *)
      let page = Int64.of_int (Geometry.page_size geom) in
      let rec map_mbuf d i =
        if i >= mbuf_pages then Ok d
        else
          let va = Int64.add mbuf_va (Int64.mul page (Int64.of_int i)) in
          let hpa = Int64.add layout.Layout.mbuf_base (Int64.mul page (Int64.of_int i)) in
          let* d = Pt_flat.map_page d ~root:gpt_root ~va ~pa:(gpa_of_va va) Flags.user_rw in
          let* d = Pt_flat.map_page d ~root:ept_root ~va:(gpa_of_va va) ~pa:hpa Flags.user_rw in
          map_mbuf d (i + 1)
      in
      let* d = map_mbuf d 0 in
      Ok (d, gpt_root, ept_root)
    in
    run_alloc d0 build ~value_on_error:0 ~ok:(fun (d, gpt_root, ept_root) ->
        let eid = d.Absdata.next_eid in
        let enclave =
          {
            Enclave.eid;
            state = Enclave.Created;
            elrange_base;
            elrange_pages;
            mbuf_va;
            mbuf_pages;
            gpt_root;
            ept_root;
          }
        in
        let d = Absdata.update_enclave { d with Absdata.next_eid = eid + 1 } enclave in
        { d; status = Success; value = eid })

let add_page (d0 : Absdata.t) ~eid ~va =
  let geom = Absdata.geom d0 in
  let layout = d0.Absdata.layout in
  match Absdata.find_enclave d0 eid with
  | Error _ -> fail d0 Invalid_param ()
  | Ok enclave ->
      if not (Enclave.lifecycle_equal enclave.Enclave.state Enclave.Created) then
        fail d0 Bad_state ()
      else if
        (not (Geometry.page_aligned geom va))
        || not (Enclave.in_elrange enclave geom va)
      then fail d0 Invalid_param ()
      else (
        match Epcm.find_free d0.Absdata.epcm with
        | None -> fail d0 No_memory ()
        | Some page_index ->
            let hpa = Layout.epc_page_addr layout page_index in
            let build =
              let* d =
                Pt_flat.map_page d0 ~root:enclave.Enclave.gpt_root ~va
                  ~pa:(gpa_of_va va) Flags.user_rw
              in
              let* d =
                Pt_flat.map_page d ~root:enclave.Enclave.ept_root
                  ~va:(gpa_of_va va) ~pa:hpa Flags.user_rw
              in
              (* EADD delivers a scrubbed page. *)
              let* phys =
                Phys_mem.zero_range d.Absdata.phys hpa
                  ~bytes_len:(Geometry.page_size geom)
              in
              let* epcm =
                Epcm.set d.Absdata.epcm page_index (Epcm.Valid { eid; va })
              in
              Ok { d with Absdata.phys; epcm }
            in
            (match build with
            | Ok d -> { d; status = Success; value = () }
            | Error msg ->
                (* distinguish "already mapped" (caller error) from pool
                   exhaustion while allocating intermediate tables *)
                if
                  String.length msg >= 10
                  && String.sub msg 0 2 = "va"
                then fail d0 Invalid_param ()
                else if String.equal msg "frame pool exhausted" then
                  fail d0 No_memory ()
                else fail d0 Invalid_param ()))

let remove_page (d0 : Absdata.t) ~eid ~va =
  let geom = Absdata.geom d0 in
  let layout = d0.Absdata.layout in
  match Absdata.find_enclave d0 eid with
  | Error _ -> fail d0 Invalid_param ()
  | Ok enclave ->
      if not (Enclave.lifecycle_equal enclave.Enclave.state Enclave.Created) then
        fail d0 Bad_state ()
      else if
        (not (Geometry.page_aligned geom va))
        || not (Enclave.in_elrange enclave geom va)
      then fail d0 Invalid_param ()
      else
        let build =
          let* backing =
            Pt_flat.query d0 ~root:enclave.Enclave.ept_root ~va:(gpa_of_va va)
          in
          let* hpa =
            match backing with
            | Some (hpa, _) -> Ok hpa
            | None -> Error "va not mapped"
          in
          let* page =
            match Layout.epc_page_index layout hpa with
            | Some p -> Ok p
            | None -> Error "backing page not in the EPC"
          in
          let* st = Epcm.get d0.Absdata.epcm page in
          let* () =
            match st with
            | Epcm.Valid { eid = owner; va = rec_va }
              when owner = eid && Word.equal rec_va va ->
                Ok ()
            | Epcm.Valid _ | Epcm.Free -> Error "EPCM entry does not match"
          in
          let* d = Pt_flat.unmap_page d0 ~root:enclave.Enclave.gpt_root ~va in
          let* d = Pt_flat.unmap_page d ~root:enclave.Enclave.ept_root ~va:(gpa_of_va va) in
          (* scrub before the page can be re-issued *)
          let* phys =
            Phys_mem.zero_range d.Absdata.phys hpa ~bytes_len:(Geometry.page_size geom)
          in
          let* epcm = Epcm.set d.Absdata.epcm page Epcm.Free in
          Ok { d with Absdata.phys; epcm }
        in
        (match build with
        | Ok d -> { d; status = Success; value = () }
        | Error _ -> fail d0 Invalid_param ())

let init_done (d0 : Absdata.t) ~eid =
  match Absdata.find_enclave d0 eid with
  | Error _ -> fail d0 Invalid_param ()
  | Ok enclave ->
      if not (Enclave.lifecycle_equal enclave.Enclave.state Enclave.Created) then
        fail d0 Bad_state ()
      else
        let d =
          Absdata.update_enclave d0 { enclave with Enclave.state = Enclave.Initialized }
        in
        { d; status = Success; value = () }

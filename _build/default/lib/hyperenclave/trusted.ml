module Spec = Mirverif.Spec
module M = Marshal_v

let ( let* ) = Result.bind

let phys_read =
  Spec.make "phys_read" (fun (d : Absdata.t) args ->
      let* pa = M.arg1 args in
      let* v = Phys_mem.read64 d.Absdata.phys pa in
      Ok (d, M.u64 v))

let phys_write =
  Spec.make "phys_write" (fun (d : Absdata.t) args ->
      let* pa, v = M.arg2 args in
      let* phys = Phys_mem.write64 d.Absdata.phys pa v in
      Ok ({ d with Absdata.phys }, M.unit_v))

let falloc_bitmap_read =
  Spec.make "falloc_bitmap_read" (fun (d : Absdata.t) args ->
      let* w = M.arg1 args in
      let* w = M.to_int w in
      let* bits = Frame_alloc.bitmap_word d.Absdata.falloc w in
      Ok (d, M.u64 bits))

let falloc_bitmap_write =
  Spec.make "falloc_bitmap_write" (fun (d : Absdata.t) args ->
      let* w, bits = M.arg2 args in
      let* w = M.to_int w in
      let* falloc = Frame_alloc.set_bitmap_word d.Absdata.falloc w bits in
      Ok ({ d with Absdata.falloc }, M.unit_v))

let epcm_state =
  Spec.make "epcm_state" (fun (d : Absdata.t) args ->
      let* page = M.arg1 args in
      let* page = M.to_int page in
      let* st = Epcm.get d.Absdata.epcm page in
      Ok (d, M.of_int (match st with Epcm.Free -> 0 | Epcm.Valid _ -> 1)))

let epcm_eid =
  Spec.make "epcm_eid" (fun (d : Absdata.t) args ->
      let* page = M.arg1 args in
      let* page = M.to_int page in
      let* st = Epcm.get d.Absdata.epcm page in
      match st with
      | Epcm.Valid { eid; _ } -> Ok (d, M.of_int eid)
      | Epcm.Free -> Ok (d, M.of_int 0))

let epcm_va =
  Spec.make "epcm_va" (fun (d : Absdata.t) args ->
      let* page = M.arg1 args in
      let* page = M.to_int page in
      let* st = Epcm.get d.Absdata.epcm page in
      match st with
      | Epcm.Valid { va; _ } -> Ok (d, M.u64 va)
      | Epcm.Free -> Ok (d, M.u64 0L))

let epcm_write =
  Spec.make "epcm_write" (fun (d : Absdata.t) args ->
      let* page, state, eid, va = M.arg4 args in
      let* page = M.to_int page in
      let* st =
        match state with
        | 0L -> Ok Epcm.Free
        | 1L ->
            let* eid = M.to_int eid in
            Ok (Epcm.Valid { eid; va })
        | _ -> Error "epcm_write: state must be 0 or 1"
      in
      let* epcm = Epcm.set d.Absdata.epcm page st in
      Ok ({ d with Absdata.epcm }, M.unit_v))

let all =
  [
    phys_read; phys_write; falloc_bitmap_read; falloc_bitmap_write; epcm_state;
    epcm_eid; epcm_va; epcm_write;
  ]

let extern_decls =
  {|
extern fn phys_read(pa: u64) -> u64;
extern fn phys_write(pa: u64, value: u64);
extern fn falloc_bitmap_read(word: u64) -> u64;
extern fn falloc_bitmap_write(word: u64, bits: u64);
extern fn epcm_state(page: u64) -> u64;
extern fn epcm_eid(page: u64) -> u64;
extern fn epcm_va(page: u64) -> u64;
extern fn epcm_write(page: u64, state: u64, eid: u64, va: u64);
|}

module Spec = Mirverif.Spec
module M = Marshal_v
module Word = Mir.Word

let ( let* ) = Result.bind

type t = { layer : string; spec : Absdata.t Spec.t }

let layer_names =
  [
    "Trusted"; "PteOps"; "FrameAlloc"; "PhysEntry"; "TableOps"; "WalkRead";
    "WalkAlloc"; "PtMap"; "PtQuery"; "AddrSpace"; "Epcm"; "MarshBuf";
    "EnclaveMem"; "Hypercalls"; "IsolationModel";
  ]

(* ------------------------------------------------------------------ *)
(* Geometry-derived constants, mirroring Mem_source                    *)

type k = {
  layout : Layout.t;
  page_size : int64;
  entries : int64;
  levels : int64;
  va_limit : int64;
  present_mask : int64;
  huge_mask : int64;
  flags_mask : int64;
  addr_mask : int64;
  user_rw : int64;
  frame_base : int64;
  nframes : int64;
  epc_base : int64;
  epc_pages : int64;
  mbuf_phys : int64;
  mbuf_pages : int64;
  phys_limit : int64;
}

let konst (layout : Layout.t) =
  let g = layout.Layout.geom in
  let bit i = Int64.shift_left 1L i in
  let page_size = Int64.of_int (Geometry.page_size g) in
  {
    layout;
    page_size;
    entries = Int64.of_int (Geometry.entries_per_table g);
    levels = Int64.of_int g.Geometry.levels;
    va_limit = Geometry.va_limit g;
    present_mask = bit g.Geometry.fb_present;
    huge_mask = bit g.Geometry.fb_huge;
    flags_mask =
      Int64.logor
        (Int64.logor (bit g.Geometry.fb_present) (bit g.Geometry.fb_write))
        (Int64.logor (bit g.Geometry.fb_user) (bit g.Geometry.fb_huge));
    addr_mask =
      Int64.logand (Int64.sub (bit 57) 1L) (Int64.lognot (Int64.sub page_size 1L));
    user_rw =
      Int64.logor (bit g.Geometry.fb_present)
        (Int64.logor (bit g.Geometry.fb_write) (bit g.Geometry.fb_user));
    frame_base = layout.Layout.frame_base;
    nframes = Int64.of_int layout.Layout.frame_count;
    epc_base = layout.Layout.epc_base;
    epc_pages = Int64.of_int layout.Layout.epc_pages;
    mbuf_phys = layout.Layout.mbuf_base;
    mbuf_pages = Int64.of_int layout.Layout.mbuf_pages;
    phys_limit = Layout.phys_limit layout;
  }

let ok_ = Mem_source.status_ok
let invalid = Mem_source.status_invalid
let nomem = Mem_source.status_no_memory
let badstate = Mem_source.status_bad_state

(* 64-bit wrapping helpers, matching the code's u64 arithmetic *)
let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( &% ) = Int64.logand
let ( |% ) = Int64.logor
let lt_u = Word.lt_u
let le_u = Word.le_u

(* ------------------------------------------------------------------ *)
(* Pure layer-2 semantics, shared by higher specs                      *)

let pte_is_present k e = not (Int64.equal (e &% k.present_mask) 0L)
let pte_is_huge k e = not (Int64.equal (e &% k.huge_mask) 0L)
let pte_addr k e = e &% k.addr_mask
let pte_flag_bits k e = e &% k.flags_mask
let pte_make k pa flags = pte_addr k pa |% (flags &% k.flags_mask)
let page_offset k va = va &% Int64.sub k.page_size 1L
let page_base k va = va &% Int64.lognot (Int64.sub k.page_size 1L)
let is_page_aligned k a = Int64.equal (page_offset k a) 0L
let va_ok k va = lt_u va k.va_limit

let span_shift k level =
  let g = k.layout.Layout.geom in
  Int64.of_int g.Geometry.page_shift
  +% (Int64.sub level 1L *% Int64.of_int g.Geometry.index_bits)

(* The code's [>>] faults on shift amounts outside 0..63, so the spec
   is undefined there (callers always pass levels 1..LEVELS). *)
let va_index_checked k level va =
  let sh = span_shift k level in
  if lt_u sh 64L then Ok (Word.shift_right Word.W64 va (Int64.to_int sh) &% Int64.sub k.entries 1L)
  else Error (Printf.sprintf "va_index: shift amount %Lu out of range" sh)

let va_index k level va =
  match va_index_checked k level va with
  | Ok v -> v
  | Error msg -> invalid_arg msg

(* ------------------------------------------------------------------ *)
(* Stateful semantics helpers (mirror the code exactly)                *)

let frame_addr k frame = k.frame_base +% (frame *% k.page_size)
let entry_pa k frame index = frame_addr k frame +% (index *% 8L)

let read_entry k (d : Absdata.t) frame index =
  Phys_mem.read64 d.Absdata.phys (entry_pa k frame index)

let write_entry k (d : Absdata.t) frame index e =
  let* phys = Phys_mem.write64 d.Absdata.phys (entry_pa k frame index) e in
  Ok { d with Absdata.phys }

let frame_is_allocated k (d : Absdata.t) i =
  lt_u i k.nframes
  && Frame_alloc.is_allocated d.Absdata.falloc (Int64.to_int i)

let frame_alloc_sem k (d : Absdata.t) =
  match Frame_alloc.alloc d.Absdata.falloc with
  | Ok (falloc, i) -> ({ d with Absdata.falloc }, Int64.of_int i)
  | Error _ -> (d, k.nframes)

let table_zero_sem k (d : Absdata.t) frame =
  let* phys =
    Phys_mem.zero_range d.Absdata.phys (frame_addr k frame)
      ~bytes_len:(Int64.to_int k.page_size)
  in
  Ok { d with Absdata.phys }

let create_table_sem k d =
  let d, f = frame_alloc_sem k d in
  if Int64.equal f k.nframes then Ok (d, k.nframes)
  else
    let* d = table_zero_sem k d f in
    Ok (d, f)

let entry_target_frame_sem k d e =
  let pa = pte_addr k e in
  if lt_u pa k.frame_base then k.nframes
  else
    let idx = Word.shift_right Word.W64 (Int64.sub pa k.frame_base)
        k.layout.Layout.geom.Geometry.page_shift
    in
    if not (lt_u idx k.nframes) then k.nframes
    else if not (frame_is_allocated k d idx) then k.nframes
    else idx

type walk_out = { w_status : int64; w_level : int64; w_frame : int64; w_index : int64; w_entry : int64 }

let walk_sem k d root va =
  let rec go frame level =
    let index = va_index k level va in
    let* e = read_entry k d frame index in
    if not (pte_is_present k e) then
      Ok { w_status = Mem_source.walk_missing; w_level = level; w_frame = frame; w_index = index; w_entry = e }
    else if Int64.equal level 1L || pte_is_huge k e then
      Ok { w_status = Mem_source.walk_found; w_level = level; w_frame = frame; w_index = index; w_entry = e }
    else
      let next = entry_target_frame_sem k d e in
      if Int64.equal next k.nframes then
        Ok { w_status = Mem_source.walk_malformed; w_level = level; w_frame = frame; w_index = index; w_entry = e }
      else go next (Int64.sub level 1L)
  in
  go root k.levels

let walk_alloc_sem k d root va =
  let rec go d frame level =
    if not (Word.lt_u 1L level) then Ok (d, ok_, frame)
    else
      let index = va_index k level va in
      let* e = read_entry k d frame index in
      if pte_is_present k e then
        if pte_is_huge k e then Ok (d, invalid, frame)
        else
          let next = entry_target_frame_sem k d e in
          if Int64.equal next k.nframes then Ok (d, invalid, frame)
          else go d next (Int64.sub level 1L)
      else
        let* d, fresh = create_table_sem k d in
        if Int64.equal fresh k.nframes then Ok (d, nomem, frame)
        else
          let* d = write_entry k d frame index (pte_make k (frame_addr k fresh) k.user_rw) in
          go d fresh (Int64.sub level 1L)
  in
  go d root k.levels

let map_page_sem k d root va pa flags =
  if
    (not (va_ok k va))
    || (not (is_page_aligned k va))
    || (not (is_page_aligned k pa))
    || Int64.equal (flags &% k.present_mask) 0L
    || not (Int64.equal (flags &% k.huge_mask) 0L)
  then Ok (d, invalid)
  else
    let* d, status, frame = walk_alloc_sem k d root va in
    if not (Int64.equal status ok_) then Ok (d, status)
    else
      let index = va_index k 1L va in
      let* old = read_entry k d frame index in
      if pte_is_present k old then Ok (d, invalid)
      else
        let* d = write_entry k d frame index (pte_make k pa flags) in
        Ok (d, ok_)

let unmap_page_sem k d root va =
  if not (va_ok k va) then Ok (d, invalid)
  else
    let* w = walk_sem k d root va in
    if not (Int64.equal w.w_status Mem_source.walk_found) then Ok (d, invalid)
    else
      let* d = write_entry k d w.w_frame w.w_index 0L in
      Ok (d, ok_)

type query_out = { q_present : int64; q_pa : int64; q_flags : int64 }

let query_sem k d root va =
  if not (va_ok k va) then Ok { q_present = 0L; q_pa = 0L; q_flags = 0L }
  else
    let* w = walk_sem k d root va in
    if not (Int64.equal w.w_status Mem_source.walk_found) then
      Ok { q_present = 0L; q_pa = 0L; q_flags = 0L }
    else
      let span = Int64.to_int (span_shift k w.w_level) in
      let base = pte_addr k w.w_entry in
      let within =
        va
        &% Int64.sub (Int64.shift_left 1L span) 1L
        &% Int64.lognot (Int64.sub k.page_size 1L)
      in
      Ok { q_present = 1L; q_pa = base |% within; q_flags = pte_flag_bits k w.w_entry }

let map_range_sem k d root va pa pages flags =
  let rec go d i =
    if not (lt_u i pages) then Ok (d, ok_)
    else
      let* d, status =
        map_page_sem k d root (va +% (i *% k.page_size)) (pa +% (i *% k.page_size)) flags
      in
      if not (Int64.equal status ok_) then Ok (d, status)
      else go d (i +% 1L)
  in
  go d 0L

let epcm_state_sem (d : Absdata.t) page =
  let* st = Epcm.get d.Absdata.epcm (Int64.to_int page) in
  Ok (match st with Epcm.Free -> 0L | Epcm.Valid _ -> 1L)

let epcm_find_free_sem k (d : Absdata.t) =
  let rec go i =
    if not (lt_u i k.epc_pages) then Ok k.epc_pages
    else
      let* st = epcm_state_sem d i in
      if Int64.equal st 0L then Ok i else go (i +% 1L)
  in
  go 0L

let epc_page_addr_sem k page = k.epc_base +% (page *% k.page_size)

let epc_page_zero_sem k (d : Absdata.t) page =
  let rec go d off =
    if not (lt_u off k.page_size) then Ok d
    else
      let* phys = Phys_mem.write64 d.Absdata.phys (epc_page_addr_sem k page +% off) 0L in
      go { d with Absdata.phys } (off +% 8L)
  in
  go d 0L

let epcm_set_valid_sem k (d : Absdata.t) page eid va =
  if le_u k.epc_pages page then Ok (d, invalid)
  else
    let* st = epcm_state_sem d page in
    if not (Int64.equal st 0L) then Ok (d, invalid)
    else
      let* epcm =
        Epcm.set d.Absdata.epcm (Int64.to_int page)
          (Epcm.Valid { eid = Int64.to_int eid; va })
      in
      Ok ({ d with Absdata.epcm }, ok_)

let epcm_clear_sem k (d : Absdata.t) page =
  if le_u k.epc_pages page then Ok (d, invalid)
  else
    let* st = epcm_state_sem d page in
    if not (Int64.equal st 1L) then Ok (d, invalid)
    else
      let* epcm = Epcm.set d.Absdata.epcm (Int64.to_int page) Epcm.Free in
      Ok ({ d with Absdata.epcm }, ok_)

let mbuf_map_one_sem k d gpt ept va hpa =
  let* d, s1 = map_page_sem k d gpt va va k.user_rw in
  if not (Int64.equal s1 ok_) then Ok (d, s1)
  else map_page_sem k d ept va hpa k.user_rw

let mbuf_map_sem k d gpt ept mbuf_va =
  let rec go d i =
    if not (lt_u i k.mbuf_pages) then Ok (d, ok_)
    else
      let* d, status =
        mbuf_map_one_sem k d gpt ept
          (mbuf_va +% (i *% k.page_size))
          (k.mbuf_phys +% (i *% k.page_size))
      in
      if not (Int64.equal status ok_) then Ok (d, status)
      else go d (i +% 1L)
  in
  go d 0L

(* Enclave struct field order, matching the Rustlite declaration *)
type encl = {
  en_eid : int64;
  en_state : int64;
  en_elrange_base : int64;
  en_elrange_pages : int64;
  en_mbuf_va : int64;
  en_gpt_root : int64;
  en_ept_root : int64;
}

let decode_enclave v =
  match v with
  | Mir.Value.Struct
      ( 0,
        [
          Mir.Value.Int (eid, _); Mir.Value.Int (state, _);
          Mir.Value.Int (elrange_base, _); Mir.Value.Int (elrange_pages, _);
          Mir.Value.Int (mbuf_va, _); Mir.Value.Int (gpt_root, _);
          Mir.Value.Int (ept_root, _);
        ] ) ->
      Ok
        {
          en_eid = eid;
          en_state = state;
          en_elrange_base = elrange_base;
          en_elrange_pages = elrange_pages;
          en_mbuf_va = mbuf_va;
          en_gpt_root = gpt_root;
          en_ept_root = ept_root;
        }
  | _ -> Error "expected an Enclave struct value"

let in_elrange_sem k e va =
  le_u e.en_elrange_base va
  && lt_u va (e.en_elrange_base +% (e.en_elrange_pages *% k.page_size))

let add_page_sem k d e va =
  if not (Int64.equal e.en_state Mem_source.lifecycle_created) then Ok (d, badstate)
  else if not (is_page_aligned k va) then Ok (d, invalid)
  else if not (in_elrange_sem k e va) then Ok (d, invalid)
  else
    let* page = epcm_find_free_sem k d in
    if Int64.equal page k.epc_pages then Ok (d, nomem)
    else
      let* d, s1 = map_page_sem k d e.en_gpt_root va va k.user_rw in
      if not (Int64.equal s1 ok_) then Ok (d, s1)
      else
        let* d, s2 = map_page_sem k d e.en_ept_root va (epc_page_addr_sem k page) k.user_rw in
        if not (Int64.equal s2 ok_) then Ok (d, s2)
        else
          let* d = epc_page_zero_sem k d page in
          let* d, _ = epcm_set_valid_sem k d page e.en_eid va in
          Ok (d, ok_)

let remove_page_sem k (d : Absdata.t) e va =
  if not (Int64.equal e.en_state Mem_source.lifecycle_created) then Ok (d, badstate)
  else if not (is_page_aligned k va) then Ok (d, invalid)
  else if not (in_elrange_sem k e va) then Ok (d, invalid)
  else
    let* q = query_sem k d e.en_ept_root va in
    if Int64.equal q.q_present 0L then Ok (d, invalid)
    else if lt_u q.q_pa k.epc_base then Ok (d, invalid)
    else
      let page =
        Word.shift_right Word.W64 (Int64.sub q.q_pa k.epc_base)
          k.layout.Layout.geom.Geometry.page_shift
      in
      if le_u k.epc_pages page then Ok (d, invalid)
      else
        let* st = Epcm.get d.Absdata.epcm (Int64.to_int page) in
        match st with
        | Epcm.Free -> Ok (d, invalid)
        | Epcm.Valid { eid; va = rec_va } ->
            if not (Int64.equal (Int64.of_int eid) e.en_eid) then Ok (d, invalid)
            else if not (Word.equal rec_va va) then Ok (d, invalid)
            else
              let* d, s1 = unmap_page_sem k d e.en_gpt_root va in
              if not (Int64.equal s1 ok_) then Ok (d, s1)
              else
                let* d, s2 = unmap_page_sem k d e.en_ept_root va in
                if not (Int64.equal s2 ok_) then Ok (d, s2)
                else
                  let* d = epc_page_zero_sem k d page in
                  let* d, _ = epcm_clear_sem k d page in
                  Ok (d, ok_)

let ranges_disjoint_sem k base1 pages1 base2 pages2 =
  le_u (base1 +% (pages1 *% k.page_size)) base2
  || le_u (base2 +% (pages2 *% k.page_size)) base1

let range_ok_sem k base pages =
  (not (Int64.equal pages 0L))
  && is_page_aligned k base && va_ok k base
  && le_u (base +% (pages *% k.page_size)) k.va_limit

let hc_create_sem k d elrange_base elrange_pages mbuf_va =
  if
    (not (range_ok_sem k elrange_base elrange_pages))
    || (not (range_ok_sem k mbuf_va k.mbuf_pages))
    || not (ranges_disjoint_sem k elrange_base elrange_pages mbuf_va k.mbuf_pages)
  then Ok (d, invalid, 0L, 0L)
  else
    let* d, gpt = create_table_sem k d in
    if Int64.equal gpt k.nframes then Ok (d, nomem, 0L, 0L)
    else
      let* d, ept = create_table_sem k d in
      if Int64.equal ept k.nframes then Ok (d, nomem, 0L, 0L)
      else
        let* d, s = mbuf_map_sem k d gpt ept mbuf_va in
        if not (Int64.equal s ok_) then Ok (d, s, 0L, 0L)
        else Ok (d, ok_, gpt, ept)

(* ------------------------------------------------------------------ *)
(* Value encodings                                                     *)

let walk_res ~status ~level ~frame ~index ~entry =
  M.strukt
    [ M.u64 status; M.of_int level; M.of_int frame; M.of_int index; M.u64 entry ]

let walk_out_value w =
  M.strukt [ M.u64 w.w_status; M.u64 w.w_level; M.u64 w.w_frame; M.u64 w.w_index; M.u64 w.w_entry ]

let query_out_value q = M.strukt [ M.u64 q.q_present; M.u64 q.q_pa; M.u64 q.q_flags ]

let enclave_to_value (e : Enclave.t) =
  M.strukt
    [
      M.of_int e.Enclave.eid;
      M.u64
        (match e.Enclave.state with
        | Enclave.Created -> Mem_source.lifecycle_created
        | Enclave.Initialized -> Mem_source.lifecycle_initialized);
      M.u64 e.Enclave.elrange_base;
      M.of_int e.Enclave.elrange_pages;
      M.u64 e.Enclave.mbuf_va;
      M.of_int e.Enclave.gpt_root;
      M.of_int e.Enclave.ept_root;
    ]

(* ------------------------------------------------------------------ *)
(* Spec table                                                          *)

let pure1 name f =
  Spec.make name (fun d args ->
      let* a = M.arg1 args in
      Ok (d, f a))

let pure2 name f =
  Spec.make name (fun d args ->
      let* a, b = M.arg2 args in
      Ok (d, f a b))

let all layout =
  let k = konst layout in
  let l layer specs = List.map (fun spec -> { layer; spec }) specs in
  l "PteOps"
    [
      Spec.make "pte_empty" (fun d args ->
          match args with [] -> Ok (d, M.u64 0L) | _ -> Error "pte_empty takes no arguments");
      pure1 "pte_is_present" (fun e -> M.of_bool (pte_is_present k e));
      pure1 "pte_is_huge" (fun e -> M.of_bool (pte_is_huge k e));
      pure1 "pte_is_writable" (fun e ->
          M.of_bool (not (Int64.equal (e &% Int64.shift_left 1L k.layout.Layout.geom.Geometry.fb_write) 0L)));
      pure1 "pte_is_user" (fun e ->
          M.of_bool (not (Int64.equal (e &% Int64.shift_left 1L k.layout.Layout.geom.Geometry.fb_user) 0L)));
      pure1 "pte_addr" (fun e -> M.u64 (pte_addr k e));
      pure1 "pte_flag_bits" (fun e -> M.u64 (pte_flag_bits k e));
      pure2 "pte_make" (fun pa flags -> M.u64 (pte_make k pa flags));
      pure2 "pte_set_flags" (fun e flags -> M.u64 (pte_make k e flags));
      pure1 "page_offset" (fun va -> M.u64 (page_offset k va));
      pure1 "page_base" (fun va -> M.u64 (page_base k va));
      pure1 "is_page_aligned" (fun a -> M.of_bool (is_page_aligned k a));
      pure1 "va_ok" (fun va -> M.of_bool (va_ok k va));
      pure1 "span_shift" (fun level -> M.u64 (span_shift k level));
      Spec.make "va_index" (fun d args ->
          let* level, va = M.arg2 args in
          let* v = va_index_checked k level va in
          Ok (d, M.u64 v));
    ]
  @ l "FrameAlloc"
      [
        Spec.make "frame_bit_is_set" (fun (d : Absdata.t) args ->
            let* i = M.arg1 args in
            let* i = M.to_int i in
            let* w = Frame_alloc.bitmap_word d.Absdata.falloc (i / 64) in
            Ok (d, M.of_bool (Word.bit w (i mod 64))));
        Spec.make "frame_mark" (fun (d : Absdata.t) args ->
            let* i = M.arg1 args in
            let* i = M.to_int i in
            let* w = Frame_alloc.bitmap_word d.Absdata.falloc (i / 64) in
            let* falloc =
              Frame_alloc.set_bitmap_word d.Absdata.falloc (i / 64)
                (Word.set_bit w (i mod 64) true)
            in
            Ok ({ d with Absdata.falloc }, M.unit_v));
        Spec.make "frame_clear" (fun (d : Absdata.t) args ->
            let* i = M.arg1 args in
            let* i = M.to_int i in
            let* w = Frame_alloc.bitmap_word d.Absdata.falloc (i / 64) in
            let* falloc =
              Frame_alloc.set_bitmap_word d.Absdata.falloc (i / 64)
                (Word.set_bit w (i mod 64) false)
            in
            Ok ({ d with Absdata.falloc }, M.unit_v));
        Spec.make "frame_alloc" (fun d args ->
            match args with
            | [] ->
                let d, i = frame_alloc_sem k d in
                Ok (d, M.u64 i)
            | _ -> Error "frame_alloc takes no arguments");
        Spec.make "frame_free" (fun (d : Absdata.t) args ->
            let* i = M.arg1 args in
            if le_u k.nframes i then Ok (d, M.u64 invalid)
            else if not (Frame_alloc.is_allocated d.Absdata.falloc (Int64.to_int i))
            then Ok (d, M.u64 invalid)
            else
              let* falloc = Frame_alloc.free d.Absdata.falloc (Int64.to_int i) in
              Ok ({ d with Absdata.falloc }, M.u64 ok_));
        Spec.make "frame_is_allocated" (fun d args ->
            let* i = M.arg1 args in
            Ok (d, M.of_bool (frame_is_allocated k d i)));
      ]
  @ l "PhysEntry"
      [
        pure1 "frame_addr" (fun f -> M.u64 (frame_addr k f));
        pure2 "entry_pa" (fun f i -> M.u64 (entry_pa k f i));
        Spec.make "read_entry" (fun d args ->
            let* f, i = M.arg2 args in
            let* e = read_entry k d f i in
            Ok (d, M.u64 e));
        Spec.make "write_entry" (fun d args ->
            let* f, i, e = M.arg3 args in
            let* d = write_entry k d f i e in
            Ok (d, M.unit_v));
      ]
  @ l "TableOps"
      [
        Spec.make "table_zero" (fun d args ->
            let* f = M.arg1 args in
            let* d = table_zero_sem k d f in
            Ok (d, M.unit_v));
        Spec.make "create_table" (fun d args ->
            match args with
            | [] ->
                let* d, f = create_table_sem k d in
                Ok (d, M.u64 f)
            | _ -> Error "create_table takes no arguments");
      ]
  @ l "WalkRead"
      [
        Spec.make "entry_target_frame" (fun d args ->
            let* e = M.arg1 args in
            Ok (d, M.u64 (entry_target_frame_sem k d e)));
        Spec.make "walk" (fun d args ->
            let* root, va = M.arg2 args in
            let* w = walk_sem k d root va in
            Ok (d, walk_out_value w));
      ]
  @ l "WalkAlloc"
      [
        Spec.make "walk_alloc" (fun d args ->
            let* root, va = M.arg2 args in
            let* d, status, frame = walk_alloc_sem k d root va in
            Ok (d, M.strukt [ M.u64 status; M.u64 frame ]));
      ]
  @ l "PtMap"
      [
        Spec.make "map_page" (fun d args ->
            let* root, va, pa, flags = M.arg4 args in
            let* d, status = map_page_sem k d root va pa flags in
            Ok (d, M.u64 status));
        Spec.make "unmap_page" (fun d args ->
            let* root, va = M.arg2 args in
            let* d, status = unmap_page_sem k d root va in
            Ok (d, M.u64 status));
      ]
  @ l "PtQuery"
      [
        Spec.make "query" (fun d args ->
            let* root, va = M.arg2 args in
            let* q = query_sem k d root va in
            Ok (d, query_out_value q));
        Spec.make "translate" (fun d args ->
            let* root, va = M.arg2 args in
            let* q = query_sem k d root va in
            if Int64.equal q.q_present 0L then Ok (d, query_out_value q)
            else
              Ok
                ( d,
                  query_out_value
                    { q with q_pa = q.q_pa |% page_offset k va } ));
      ]
  @ l "AddrSpace"
      [
        Spec.make "as_create" (fun d args ->
            match args with
            | [] ->
                let* d, f = create_table_sem k d in
                if Int64.equal f k.nframes then
                  Ok (d, M.strukt [ M.u64 nomem; M.u64 0L ])
                else Ok (d, M.strukt [ M.u64 ok_; M.u64 f ])
            | _ -> Error "as_create takes no arguments");
        Spec.make "map_range_one" (fun d args ->
            let* root, va, pa, flags = M.arg4 args in
            let* d, status = map_page_sem k d root va pa flags in
            Ok (d, M.u64 status));
        Spec.make "map_range" (fun d args ->
            match args with
            | [ root; va; pa; pages; flags ] ->
                let* root, _ = Mir.Value.as_word root in
                let* va, _ = Mir.Value.as_word va in
                let* pa, _ = Mir.Value.as_word pa in
                let* pages, _ = Mir.Value.as_word pages in
                let* flags, _ = Mir.Value.as_word flags in
                let* d, status = map_range_sem k d root va pa pages flags in
                Ok (d, M.u64 status)
            | _ -> Error "map_range expects 5 arguments");
      ]
  @ l "Epcm"
      [
        Spec.make "epcm_find_free" (fun d args ->
            match args with
            | [] ->
                let* i = epcm_find_free_sem k d in
                Ok (d, M.u64 i)
            | _ -> Error "epcm_find_free takes no arguments");
        Spec.make "epcm_set_valid" (fun d args ->
            let* page, eid, va = M.arg3 args in
            let* d, status = epcm_set_valid_sem k d page eid va in
            Ok (d, M.u64 status));
        Spec.make "epcm_clear" (fun d args ->
            let* page = M.arg1 args in
            let* d, status = epcm_clear_sem k d page in
            Ok (d, M.u64 status));
        pure1 "epc_page_addr" (fun page -> M.u64 (epc_page_addr_sem k page));
        Spec.make "epc_page_zero" (fun d args ->
            let* page = M.arg1 args in
            let* d = epc_page_zero_sem k d page in
            Ok (d, M.unit_v));
      ]
  @ l "MarshBuf"
      [
        Spec.make "mbuf_map_one" (fun d args ->
            let* gpt, ept, va, hpa = M.arg4 args in
            let* d, status = mbuf_map_one_sem k d gpt ept va hpa in
            Ok (d, M.u64 status));
        Spec.make "mbuf_map" (fun d args ->
            let* gpt, ept, mbuf_va = M.arg3 args in
            let* d, status = mbuf_map_sem k d gpt ept mbuf_va in
            Ok (d, M.u64 status));
      ]
  @ l "EnclaveMem"
      [
        Spec.make "Enclave::in_elrange" (fun d args ->
            match args with
            | [ self; va ] ->
                let* e = decode_enclave self in
                let* va, _ = Mir.Value.as_word va in
                Ok (d, M.of_bool (in_elrange_sem k e va))
            | _ -> Error "in_elrange expects (self, va)");
        Spec.make "Enclave::add_page" (fun d args ->
            match args with
            | [ self; va ] ->
                let* e = decode_enclave self in
                let* va, _ = Mir.Value.as_word va in
                let* d, status = add_page_sem k d e va in
                Ok (d, M.u64 status)
            | _ -> Error "add_page expects (self, va)");
        Spec.make "Enclave::remove_page" (fun d args ->
            match args with
            | [ self; va ] ->
                let* e = decode_enclave self in
                let* va, _ = Mir.Value.as_word va in
                let* d, status = remove_page_sem k d e va in
                Ok (d, M.u64 status)
            | _ -> Error "remove_page expects (self, va)");
      ]
  @ l "Hypercalls"
      [
        Spec.make "ranges_disjoint" (fun d args ->
            let* b1, p1, b2, p2 = M.arg4 args in
            Ok (d, M.of_bool (ranges_disjoint_sem k b1 p1 b2 p2)));
        pure2 "range_ok" (fun base pages -> M.of_bool (range_ok_sem k base pages));
        Spec.make "hc_create" (fun d args ->
            let* elrange_base, elrange_pages, mbuf_va = M.arg3 args in
            let* d, status, gpt, ept = hc_create_sem k d elrange_base elrange_pages mbuf_va in
            Ok (d, M.strukt [ M.u64 status; M.u64 gpt; M.u64 ept ]));
      ]

let find layout name =
  List.find_opt (fun t -> String.equal t.spec.Spec.name name) (all layout)
  |> Option.map (fun t -> t.spec)

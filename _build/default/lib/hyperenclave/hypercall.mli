(** Hypercall specifications (the top-level functional model).

    These are the pure functions on the abstract state that the
    security proofs quantify over (paper Sec. 5.1): [create] and
    [add_page] emulate the privileged SGX instructions ECREATE/EADD,
    [init_done] emulates EINIT.  [enter]/[exit] do not touch page
    tables and are modelled in {!Security.Transition}.

    Failure semantics are transactional: a hypercall that returns a
    non-[Success] status leaves the abstract state unchanged (callers
    observe only the status code), which is the behaviour the monitor's
    error paths must refine. *)

type status =
  | Success
  | Invalid_param
  | No_memory
  | Bad_state  (** lifecycle violation, e.g. EADD after EINIT *)

val status_code : status -> Mir.Word.t
(** Encoding used by the MIR implementation: 0, 1, 2, 3. *)

val status_of_code : Mir.Word.t -> status option
val status_equal : status -> status -> bool
val pp_status : Format.formatter -> status -> unit

type 'a outcome = { d : Absdata.t; status : status; value : 'a }

val create :
  Absdata.t -> elrange_base:Mir.Word.t -> elrange_pages:int ->
  mbuf_va:Mir.Word.t -> int outcome
(** Create an enclave: allocate GPT and EPT roots, install the fixed
    marshalling-buffer mapping (identity in the GPT; window onto the
    physical mbuf region in the EPT), register the enclave as
    [Created].  Returns the new enclave id. *)

val add_page : Absdata.t -> eid:int -> va:Mir.Word.t -> unit outcome
(** Add a zeroed EPC page at [va] (must lie in the ELRANGE of a
    [Created] enclave): pick the lowest free EPC page, map [va]
    identity in the GPT and [va -> epc page] in the EPT, and record
    the owner in the EPCM. *)

val remove_page : Absdata.t -> eid:int -> va:Mir.Word.t -> unit outcome
(** EREMOVE (extension): tear down the mappings of an EPC page whose
    EPCM entry matches [(eid, va)], scrub it, and mark it free.  Only
    legal while the enclave is still [Created]. *)

val init_done : Absdata.t -> eid:int -> unit outcome
(** Seal the enclave ([Created] to [Initialized]); no further pages
    can be added. *)

val gpa_of_va : Mir.Word.t -> Mir.Word.t
(** The guest-physical address scheme for enclaves: identity.  The GPT
    maps va to [gpa_of_va va]; the EPT owns the real translation. *)

module IntMap = Map.Make (Int)

type t = {
  layout : Layout.t;
  phys : Phys_mem.t;
  falloc : Frame_alloc.t;
  epcm : Epcm.t;
  enclaves : Enclave.t IntMap.t;
  next_eid : int;
  os_ept_root : int option;
}

let create layout =
  {
    layout;
    phys = Phys_mem.create ~limit:(Layout.phys_limit layout);
    falloc = Frame_alloc.create ~nframes:layout.Layout.frame_count;
    epcm = Epcm.create ~npages:layout.Layout.epc_pages;
    enclaves = IntMap.empty;
    next_eid = 1;
    os_ept_root = None;
  }

let geom d = d.layout.Layout.geom

let find_enclave d eid =
  match IntMap.find_opt eid d.enclaves with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "no enclave with id %d" eid)

let update_enclave d e = { d with enclaves = IntMap.add e.Enclave.eid e d.enclaves }
let enclave_ids d = List.map fst (IntMap.bindings d.enclaves)
let enclave_count d = IntMap.cardinal d.enclaves

let equal a b =
  Phys_mem.equal a.phys b.phys
  && Frame_alloc.equal a.falloc b.falloc
  && Epcm.equal a.epcm b.epcm
  && IntMap.equal Enclave.equal a.enclaves b.enclaves
  && a.next_eid = b.next_eid
  && Option.equal Int.equal a.os_ept_root b.os_ept_root

let pp fmt d =
  Format.fprintf fmt "@[<v>%a@,allocated frames: %d, EPC valid: %d, enclaves: %d@]"
    Layout.pp d.layout
    (Frame_alloc.allocated_count d.falloc)
    (Epcm.valid_count d.epcm) (enclave_count d)

module Word = Mir.Word

let ( let* ) = Result.bind

(* Relate one flat entry word, stored in a table at [level], to a tree
   entry.  The tree side's Term nodes span [level]'s range. *)
let rec r_pte (d : Absdata.t) ~level entry (node : Pt_tree.node option) =
  let g = Absdata.geom d in
  match node with
  | None ->
      if Pte.is_present g entry then
        Error
          (Printf.sprintf "flat entry %s present where tree has none" (Word.to_hex entry))
      else Ok ()
  | Some (Pt_tree.Term { pa; flags }) ->
      if not (Pte.is_present g entry) then
        Error "tree terminal where flat entry is absent"
      else if level > 1 && not (Pte.is_huge g entry) then
        Error "tree terminal above level 1 but flat entry not huge"
      else if level = 1 && Pte.is_huge g entry then
        Error "flat level-1 entry marked huge"
      else if not (Word.equal (Pte.addr g entry) pa) then
        Error
          (Printf.sprintf "terminal addresses differ: flat %s, tree %s"
             (Word.to_hex (Pte.addr g entry))
             (Word.to_hex pa))
      else if not (Flags.equal (Pte.flags g entry) flags) then
        Error
          (Printf.sprintf "terminal flags differ: flat %s, tree %s"
             (Flags.to_string (Pte.flags g entry))
             (Flags.to_string flags))
      else Ok ()
  | Some (Pt_tree.Table { frame; entries }) ->
      if level <= 1 then Error "tree table below level 1"
      else if not (Pte.is_present g entry) then
        Error "tree table where flat entry is absent"
      else if Pte.is_huge g entry then Error "tree table where flat entry is huge"
      else if not (Word.equal (Pte.addr g entry) (Layout.frame_addr d.layout frame)) then
        Error
          (Printf.sprintf "next-table frames differ: flat %s, tree frame %d"
             (Word.to_hex (Pte.addr g entry))
             frame)
      else r_table d ~level:(level - 1) ~frame entries

and r_table (d : Absdata.t) ~level ~frame entries =
  let g = Absdata.geom d in
  if Array.length entries <> Geometry.entries_per_table g then
    Error "tree table arity mismatch"
  else
    let rec go index =
      if index >= Array.length entries then Ok ()
      else
        let* entry = Pt_flat.read_entry d ~frame ~index in
        let* () =
          Result.map_error
            (fun msg -> Printf.sprintf "frame %d index %d: %s" frame index msg)
            (r_pte d ~level entry entries.(index))
        in
        go (index + 1)
    in
    go 0

let relate_explain (d : Absdata.t) ~root (st : Pt_tree.state) =
  match st.Pt_tree.root with
  | Pt_tree.Term _ -> Error "tree root is not a table"
  | Pt_tree.Table { frame; entries } ->
      if frame <> root then
        Error (Printf.sprintf "root frames differ: flat %d, tree %d" root frame)
      else if not (Frame_alloc.equal st.Pt_tree.falloc d.Absdata.falloc) then
        Error "ghost allocator out of sync"
      else r_table d ~level:(Absdata.geom d).Geometry.levels ~frame entries

let relate d ~root st = Result.is_ok (relate_explain d ~root st)

let abstract (d : Absdata.t) ~root =
  let g = Absdata.geom d in
  let seen = Hashtbl.create 16 in
  let rec table frame level =
    if Hashtbl.mem seen frame then
      Error (Printf.sprintf "table frame %d reachable twice" frame)
    else (
      Hashtbl.add seen frame ();
      let n = Geometry.entries_per_table g in
      let entries = Array.make n None in
      let rec go index =
        if index >= n then Ok (Pt_tree.Table { frame; entries })
        else
          let* entry = Pt_flat.read_entry d ~frame ~index in
          let* node =
            if not (Pte.is_present g entry) then Ok None
            else if level = 1 || Pte.is_huge g entry then
              Ok (Some (Pt_tree.Term { pa = Pte.addr g entry; flags = Pte.flags g entry }))
            else
              let pa = Pte.addr g entry in
              match Layout.frame_index d.layout pa with
              | None ->
                  Error
                    (Printf.sprintf
                       "entry at frame %d index %d points outside the frame area (%s)"
                       frame index (Word.to_hex pa))
              | Some next ->
                  if not (Frame_alloc.is_allocated d.falloc next) then
                    Error (Printf.sprintf "next table frame %d not allocated" next)
                  else Result.map Option.some (table next (level - 1))
          in
          entries.(index) <- node;
          go (index + 1)
      in
      go 0)
  in
  let* root_node = table root g.Geometry.levels in
  Ok { Pt_tree.geom = g; layout = d.layout; falloc = d.falloc; root = root_node }

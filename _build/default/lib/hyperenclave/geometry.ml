module Word = Mir.Word

type t = {
  levels : int;
  index_bits : int;
  page_shift : int;
  fb_present : int;
  fb_write : int;
  fb_user : int;
  fb_huge : int;
}

let make ~levels ~index_bits ~fb_present ~fb_write ~fb_user ~fb_huge =
  let page_shift = index_bits + 3 in
  let va_bits = (levels * index_bits) + page_shift in
  let flag_bits = [ fb_present; fb_write; fb_user; fb_huge ] in
  if levels < 1 then Error "geometry: need at least one level"
  else if index_bits < 1 then Error "geometry: need at least one index bit"
  else if va_bits > 57 then
    (* leave room above the address field for future software bits *)
    Error "geometry: virtual address space too large"
  else if List.exists (fun b -> b < 0 || b >= page_shift) flag_bits then
    Error "geometry: flag bits must lie within the page-offset bits"
  else if
    List.sort_uniq Int.compare flag_bits |> List.length <> List.length flag_bits
  then Error "geometry: flag bits must be distinct"
  else
    Ok { levels; index_bits; page_shift; fb_present; fb_write; fb_user; fb_huge }

let force = function Ok g -> g | Error msg -> invalid_arg msg

let x86_64 =
  force (make ~levels:4 ~index_bits:9 ~fb_present:0 ~fb_write:1 ~fb_user:2 ~fb_huge:7)

let tiny =
  force (make ~levels:2 ~index_bits:2 ~fb_present:0 ~fb_write:1 ~fb_user:2 ~fb_huge:3)

let entries_per_table g = 1 lsl g.index_bits
let page_size g = 1 lsl g.page_shift
let va_bits g = (g.levels * g.index_bits) + g.page_shift
let va_limit g = Int64.shift_left 1L (va_bits g)

let va_index g ~level va =
  if level < 1 || level > g.levels then
    invalid_arg (Printf.sprintf "va_index: level %d out of 1..%d" level g.levels)
  else
    let lo = g.page_shift + ((level - 1) * g.index_bits) in
    Word.to_int (Word.extract va ~lo ~len:g.index_bits)

let page_offset g va = Word.extract va ~lo:0 ~len:g.page_shift

let page_base g va =
  Int64.logand va (Int64.lognot (Int64.of_int (page_size g - 1)))

let page_aligned g va = Word.equal (page_offset g va) Word.zero

let level_span_shift g ~level =
  if level < 1 || level > g.levels then
    invalid_arg (Printf.sprintf "level_span_shift: level %d out of 1..%d" level g.levels)
  else g.page_shift + ((level - 1) * g.index_bits)

let pp fmt g =
  Format.fprintf fmt "%d levels x %d entries, %d-byte pages" g.levels
    (entries_per_table g) (page_size g)

module B = Mir.Builder
module Syn = Mir.Syntax
module StrSet = Set.Make (String)
open Typecheck

let rec mir_ty = function
  | Ast.Tu64 -> Mir.Ty.Int Mir.Ty.U64
  | Ast.Tbool -> Mir.Ty.Bool
  | Ast.Tunit -> Mir.Ty.Unit
  | Ast.Tref t -> Mir.Ty.Ref (mir_ty t)
  | Ast.Tstruct s -> Mir.Ty.Adt s

(* ------------------------------------------------------------------ *)
(* Address-taken analysis                                              *)

let rec place_base (e : texpr) =
  match e.te with
  | Tlocal x -> Some x
  | Tfield (b, _) -> place_base b
  | Tderef _ -> None (* address comes from an existing pointer *)
  | Tint _ | Tbool_lit _ | Tunit_lit | Tref_of _ | Tbin _ | Tun _ | Tcall _
  | Tstruct_lit _ | Tvariant_lit _ | Tcast _ ->
      None

let rec addr_taken_expr acc (e : texpr) =
  match e.te with
  | Tref_of pl ->
      let acc =
        match place_base pl with Some x -> StrSet.add x acc | None -> acc
      in
      addr_taken_expr acc pl
  | Tint _ | Tbool_lit _ | Tunit_lit | Tlocal _ -> acc
  | Tfield (b, _) | Tderef b | Tun (_, b) | Tcast b -> addr_taken_expr acc b
  | Tbin (_, a, b) -> addr_taken_expr (addr_taken_expr acc a) b
  | Tcall (_, args) | Tstruct_lit (_, args) | Tvariant_lit (_, _, args) ->
      List.fold_left addr_taken_expr acc args

let rec addr_taken_stmts acc stmts = List.fold_left addr_taken_stmt acc stmts

and addr_taken_stmt acc = function
  | TSlet (_, e) | TSexpr e -> addr_taken_expr acc e
  | TSassign (a, b) -> addr_taken_expr (addr_taken_expr acc a) b
  | TSif (c, t, e) ->
      addr_taken_stmts (addr_taken_stmts (addr_taken_expr acc c) t) e
  | TSwhile (c, b) -> addr_taken_stmts (addr_taken_expr acc c) b
  | TSloop b -> addr_taken_stmts acc b
  | TSbreak | TScontinue -> acc
  | TSreturn (Some e) -> addr_taken_expr acc e
  | TSreturn None -> acc
  | TSmatch (scrut, arms, wild) ->
      let acc = addr_taken_expr acc scrut in
      let acc =
        List.fold_left (fun acc arm -> addr_taken_stmts acc arm.arm_body) acc arms
      in
      (match wild with Some body -> addr_taken_stmts acc body | None -> acc)

(* ------------------------------------------------------------------ *)
(* Lowering context                                                    *)

type ctx = {
  b : B.t;
  addr_taken : StrSet.t;
  return_block : Syn.label;
  overflow_checks : bool;  (* rustc debug mode: checked +, -, * *)
  mutable loops : (Syn.label * Syn.label) list;  (* (continue, break) *)
  mutable shadow : int;  (* counter for shadowed let bindings *)
  mutable names : string list;  (* declared MIR names, to detect shadowing *)
}

let declare_var ctx name ty =
  (* surface re-let of the same name shadows; give the new binding a
     fresh MIR name *)
  let mir_name =
    if List.mem name ctx.names then begin
      ctx.shadow <- ctx.shadow + 1;
      Printf.sprintf "%s#%d" name ctx.shadow
    end
    else name
  in
  ctx.names <- mir_name :: ctx.names;
  let kind =
    if StrSet.mem name ctx.addr_taken then B.local ctx.b ~name:mir_name (mir_ty ty)
    else B.temp ctx.b ~name:mir_name (mir_ty ty)
  in
  ignore kind;
  mir_name

(* Resolution of surface names to current MIR names: maintained as an
   association list snapshot per scope. *)
type scope = (string * string) list

let resolve scope name =
  match List.assoc_opt name scope with
  | Some mir_name -> mir_name
  | None -> name (* parameters keep their surface names *)

let fresh_temp ctx ty = B.temp ctx.b (mir_ty ty)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec lower_operand ctx scope (e : texpr) : Syn.operand =
  match e.te with
  | Tint i -> B.cword Mir.Ty.U64 i
  | Tbool_lit bv -> B.cbool bv
  | Tunit_lit -> B.cunit
  | Tlocal x -> Syn.Copy (B.pvar (resolve scope x))
  | Tfield _ | Tderef _ -> Syn.Copy (lower_place ctx scope e)
  | Tref_of pl ->
      let place = lower_place ctx scope pl in
      into_temp ctx e.tty (Syn.Ref place)
  | Tbin (op, a, b) -> lower_binop ctx scope e.tty op a b
  | Tun (op, a) ->
      let oa = lower_operand ctx scope a in
      let mop = match op with Ast.Not -> Syn.Not | Ast.Neg -> Syn.Neg in
      into_temp ctx e.tty (Syn.Unary (mop, oa))
  | Tcall (f, args) ->
      let oargs = List.map (lower_operand ctx scope) args in
      let dest = fresh_temp ctx e.tty in
      let next = B.fresh_block ctx.b in
      B.terminate ctx.b
        (Syn.Call { dest = B.pvar dest; func = f; args = oargs; target = Some next });
      B.switch_to ctx.b next;
      Syn.Copy (B.pvar dest)
  | Tstruct_lit (name, fields) ->
      let ofields = List.map (lower_operand ctx scope) fields in
      into_temp ctx e.tty (Syn.Aggregate (Syn.Agg_struct name, ofields))
  | Tvariant_lit (name, index, payload) ->
      let ofields = List.map (lower_operand ctx scope) payload in
      into_temp ctx e.tty (Syn.Aggregate (Syn.Agg_variant (name, index), ofields))
  | Tcast a ->
      let oa = lower_operand ctx scope a in
      into_temp ctx e.tty (Syn.Cast (oa, Mir.Ty.U64))

and into_temp ctx ty rv =
  let t = fresh_temp ctx ty in
  B.assign_var ctx.b t rv;
  Syn.Copy (B.pvar t)

and lower_binop ctx scope ty op a b =
  match op with
  | Ast.Land | Ast.Lor ->
      (* short-circuit: result := a; if it decides, skip b *)
      let result = fresh_temp ctx Ast.Tbool in
      let oa = lower_operand ctx scope a in
      B.assign_var ctx.b result (Syn.Use oa);
      let rhs_block = B.fresh_block ctx.b in
      let join = B.fresh_block ctx.b in
      (* for &&: false short-circuits; for ||: true short-circuits *)
      (match op with
      | Ast.Land ->
          B.terminate ctx.b
            (Syn.Switch_int (Syn.Copy (B.pvar result), [ (0L, join) ], rhs_block))
      | _ ->
          B.terminate ctx.b
            (Syn.Switch_int (Syn.Copy (B.pvar result), [ (0L, rhs_block) ], join)));
      B.switch_to ctx.b rhs_block;
      let ob = lower_operand ctx scope b in
      B.assign_var ctx.b result (Syn.Use ob);
      B.terminate ctx.b (Syn.Goto join);
      B.switch_to ctx.b join;
      Syn.Copy (B.pvar result)
  | Ast.Div | Ast.Rem ->
      let oa = lower_operand ctx scope a in
      let ob = lower_operand ctx scope b in
      (* rustc guards division with an assert terminator *)
      let nonzero = fresh_temp ctx Ast.Tbool in
      B.assign_var ctx.b nonzero
        (Syn.Binary (Syn.Ne, ob, B.cword Mir.Ty.U64 0L));
      let cont = B.fresh_block ctx.b in
      B.terminate ctx.b
        (Syn.Assert
           {
             cond = Syn.Copy (B.pvar nonzero);
             expected = true;
             msg = "attempt to divide by zero";
             target = cont;
           });
      B.switch_to ctx.b cont;
      let mop = match op with Ast.Div -> Syn.Div | _ -> Syn.Rem in
      into_temp ctx ty (Syn.Binary (mop, oa, ob))
  | (Ast.Add | Ast.Sub | Ast.Mul) when ctx.overflow_checks ->
      (* rustc debug mode: a checked operation plus an overflow assert *)
      let oa = lower_operand ctx scope a in
      let ob = lower_operand ctx scope b in
      let mop, what =
        match op with
        | Ast.Add -> (Syn.Add, "add")
        | Ast.Sub -> (Syn.Sub, "subtract")
        | _ -> (Syn.Mul, "multiply")
      in
      let pair = fresh_temp ctx Ast.Tu64 (* 2-tuple, type is nominal only *) in
      B.assign_var ctx.b pair (Syn.Checked_binary (mop, oa, ob));
      let cont = B.fresh_block ctx.b in
      B.terminate ctx.b
        (Syn.Assert
           {
             cond = Syn.Copy (B.pfield (B.pvar pair) 1);
             expected = false;
             msg = Printf.sprintf "attempt to %s with overflow" what;
             target = cont;
           });
      B.switch_to ctx.b cont;
      into_temp ctx ty (Syn.Use (Syn.Copy (B.pfield (B.pvar pair) 0)))
  | _ ->
      let oa = lower_operand ctx scope a in
      let ob = lower_operand ctx scope b in
      let mop =
        match op with
        | Ast.Add -> Syn.Add
        | Ast.Sub -> Syn.Sub
        | Ast.Mul -> Syn.Mul
        | Ast.And -> Syn.Bit_and
        | Ast.Or -> Syn.Bit_or
        | Ast.Xor -> Syn.Bit_xor
        | Ast.Shl -> Syn.Shl
        | Ast.Shr -> Syn.Shr
        | Ast.Eq -> Syn.Eq
        | Ast.Ne -> Syn.Ne
        | Ast.Lt -> Syn.Lt
        | Ast.Le -> Syn.Le
        | Ast.Gt -> Syn.Gt
        | Ast.Ge -> Syn.Ge
        | Ast.Div | Ast.Rem | Ast.Land | Ast.Lor -> assert false
      in
      into_temp ctx ty (Syn.Binary (mop, oa, ob))

and lower_place ctx scope (e : texpr) : Syn.place =
  match e.te with
  | Tlocal x -> B.pvar (resolve scope x)
  | Tfield (b, i) ->
      if Typecheck.is_place b then B.pfield (lower_place ctx scope b) i
      else
        let op = lower_operand ctx scope b in
        let t = fresh_temp ctx b.tty in
        B.assign_var ctx.b t (Syn.Use op);
        B.pfield (B.pvar t) i
  | Tderef b ->
      if Typecheck.is_place b then B.pderef (lower_place ctx scope b)
      else
        let op = lower_operand ctx scope b in
        let t = fresh_temp ctx b.tty in
        B.assign_var ctx.b t (Syn.Use op);
        B.pderef (B.pvar t)
  | Tint _ | Tbool_lit _ | Tunit_lit | Tref_of _ | Tbin _ | Tun _ | Tcall _
  | Tstruct_lit _ | Tvariant_lit _ | Tcast _ ->
      invalid_arg "lower_place: not a place (typechecker should have rejected this)"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec lower_stmts ctx scope stmts =
  List.fold_left (fun scope st -> lower_stmt ctx scope st) scope stmts

and lower_stmt ctx scope (st : tstmt) : scope =
  match st with
  | TSlet (name, init) ->
      let op = lower_operand ctx scope init in
      let mir_name = declare_var ctx name init.tty in
      B.assign ctx.b (B.pvar mir_name) (Syn.Use op);
      (name, mir_name) :: scope
  | TSassign (pl, v) ->
      let op = lower_operand ctx scope v in
      let place = lower_place ctx scope pl in
      B.assign ctx.b place (Syn.Use op);
      scope
  | TSexpr e ->
      ignore (lower_operand ctx scope e);
      scope
  | TSif (cond, then_blk, else_blk) ->
      let oc = lower_operand ctx scope cond in
      let then_label = B.fresh_block ctx.b in
      let else_label = B.fresh_block ctx.b in
      let join = B.fresh_block ctx.b in
      B.terminate ctx.b (Syn.Switch_int (oc, [ (0L, else_label) ], then_label));
      B.switch_to ctx.b then_label;
      ignore (lower_stmts ctx scope then_blk);
      B.terminate ctx.b (Syn.Goto join);
      B.switch_to ctx.b else_label;
      ignore (lower_stmts ctx scope else_blk);
      B.terminate ctx.b (Syn.Goto join);
      B.switch_to ctx.b join;
      scope
  | TSwhile (cond, body) ->
      let head = B.fresh_block ctx.b in
      let body_label = B.fresh_block ctx.b in
      let exit = B.fresh_block ctx.b in
      B.terminate ctx.b (Syn.Goto head);
      B.switch_to ctx.b head;
      let oc = lower_operand ctx scope cond in
      B.terminate ctx.b (Syn.Switch_int (oc, [ (0L, exit) ], body_label));
      B.switch_to ctx.b body_label;
      ctx.loops <- (head, exit) :: ctx.loops;
      ignore (lower_stmts ctx scope body);
      ctx.loops <- List.tl ctx.loops;
      B.terminate ctx.b (Syn.Goto head);
      B.switch_to ctx.b exit;
      scope
  | TSloop body ->
      let start = B.fresh_block ctx.b in
      let exit = B.fresh_block ctx.b in
      B.terminate ctx.b (Syn.Goto start);
      B.switch_to ctx.b start;
      ctx.loops <- (start, exit) :: ctx.loops;
      ignore (lower_stmts ctx scope body);
      ctx.loops <- List.tl ctx.loops;
      B.terminate ctx.b (Syn.Goto start);
      B.switch_to ctx.b exit;
      scope
  | TSbreak ->
      (match ctx.loops with
      | (_, exit) :: _ -> B.terminate ctx.b (Syn.Goto exit)
      | [] -> invalid_arg "break outside loop (typechecker should have rejected)");
      (* statements after a break are unreachable; park them in a fresh
         block that falls through normally *)
      let dead = B.fresh_block ctx.b in
      B.switch_to ctx.b dead;
      scope
  | TScontinue ->
      (match ctx.loops with
      | (head, _) :: _ -> B.terminate ctx.b (Syn.Goto head)
      | [] -> invalid_arg "continue outside loop (typechecker should have rejected)");
      let dead = B.fresh_block ctx.b in
      B.switch_to ctx.b dead;
      scope
  | TSreturn e ->
      (match e with
      | Some e ->
          let op = lower_operand ctx scope e in
          B.assign ctx.b (B.pvar Syn.return_var) (Syn.Use op)
      | None -> B.assign ctx.b (B.pvar Syn.return_var) (Syn.Use B.cunit));
      B.terminate ctx.b (Syn.Goto ctx.return_block);
      let dead = B.fresh_block ctx.b in
      B.switch_to ctx.b dead;
      scope
  | TSmatch (scrut, arms, wild) ->
      (* rustc shape: spill the scrutinee, switch on its discriminant,
         project payload fields through a downcast in each arm *)
      let op = lower_operand ctx scope scrut in
      let s = fresh_temp ctx scrut.tty in
      B.assign_var ctx.b s (Syn.Use op);
      let disc = fresh_temp ctx Ast.Tu64 in
      B.assign_var ctx.b disc (Syn.Discriminant (B.pvar s));
      let join = B.fresh_block ctx.b in
      let arm_labels = List.map (fun _ -> B.fresh_block ctx.b) arms in
      let otherwise = B.fresh_block ctx.b in
      let cases =
        List.map2
          (fun arm label -> (Int64.of_int arm.arm_variant, label))
          arms arm_labels
      in
      B.terminate ctx.b (Syn.Switch_int (Syn.Copy (B.pvar disc), cases, otherwise));
      List.iter2
        (fun arm label ->
          B.switch_to ctx.b label;
          let arm_scope =
            List.fold_left
              (fun sc (i, (binder, ty)) ->
                let mir_name = declare_var ctx binder ty in
                B.assign ctx.b (B.pvar mir_name)
                  (Syn.Use
                     (Syn.Copy
                        (B.pfield (B.pdowncast (B.pvar s) arm.arm_variant) i)));
                (binder, mir_name) :: sc)
              scope
              (List.mapi (fun i b -> (i, b)) arm.arm_binders)
          in
          ignore (lower_stmts ctx arm_scope arm.arm_body);
          B.terminate ctx.b (Syn.Goto join))
        arms arm_labels;
      B.switch_to ctx.b otherwise;
      (match wild with
      | Some body ->
          ignore (lower_stmts ctx scope body);
          B.terminate ctx.b (Syn.Goto join)
      | None ->
          (* exhaustive match: rustc emits Unreachable here *)
          B.terminate ctx.b Syn.Unreachable);
      B.switch_to ctx.b join;
      scope

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)

let rec all_vars_of_stmts acc = List.fold_left all_vars_of_stmt acc

and all_vars_of_stmt acc = function
  | TSlet (name, e) -> all_vars_of_expr (StrSet.add name acc) e
  | TSassign (a, b) -> all_vars_of_expr (all_vars_of_expr acc a) b
  | TSexpr e -> all_vars_of_expr acc e
  | TSif (c, t, e) -> all_vars_of_stmts (all_vars_of_stmts (all_vars_of_expr acc c) t) e
  | TSwhile (c, b) -> all_vars_of_stmts (all_vars_of_expr acc c) b
  | TSloop b -> all_vars_of_stmts acc b
  | TSbreak | TScontinue -> acc
  | TSreturn (Some e) -> all_vars_of_expr acc e
  | TSreturn None -> acc
  | TSmatch (scrut, arms, wild) ->
      let acc = all_vars_of_expr acc scrut in
      let acc =
        List.fold_left
          (fun acc arm ->
            all_vars_of_stmts
              (List.fold_left (fun a (n, _) -> StrSet.add n a) acc arm.arm_binders)
              arm.arm_body)
          acc arms
      in
      (match wild with Some body -> all_vars_of_stmts acc body | None -> acc)

and all_vars_of_expr acc (e : texpr) =
  match e.te with
  | Tlocal x -> StrSet.add x acc
  | Tint _ | Tbool_lit _ | Tunit_lit -> acc
  | Tfield (b, _) | Tderef b | Tun (_, b) | Tcast b | Tref_of b -> all_vars_of_expr acc b
  | Tbin (_, a, b) -> all_vars_of_expr (all_vars_of_expr acc a) b
  | Tcall (_, args) | Tstruct_lit (_, args) | Tvariant_lit (_, _, args) ->
      List.fold_left all_vars_of_expr acc args

let lower_function ?(lift_temps = true) ?(overflow_checks = false) (fd : tfn) =
  (* With lifting disabled every variable is address-taken, i.e. all of
     them live in object memory, like the Miri-style semantics the
     paper compares against (Sec. 3.2) — used by the ablation bench. *)
  let addr_taken =
    if lift_temps then addr_taken_stmts StrSet.empty fd.tbody
    else
      List.fold_left
        (fun s (n, _) -> StrSet.add n s)
        (all_vars_of_stmts StrSet.empty fd.tbody)
        fd.tparams
  in
  let params =
    List.map
      (fun (name, ty) ->
        let kind =
          if StrSet.mem name addr_taken then Syn.Klocal else Syn.Ktemp
        in
        (name, mir_ty ty, kind))
      fd.tparams
  in
  let b = B.create ~name:fd.symbol ~params ~ret_ty:(mir_ty fd.tret) in
  let return_block = B.fresh_block b in
  let ctx =
    {
      b;
      addr_taken;
      return_block;
      overflow_checks;
      loops = [];
      shadow = 0;
      names = List.map (fun (n, _) -> n) fd.tparams;
    }
  in
  ignore (lower_stmts ctx [] fd.tbody);
  (* implicit return at the end of the body *)
  (match fd.tret with
  | Ast.Tunit -> B.assign ctx.b (B.pvar Syn.return_var) (Syn.Use B.cunit)
  | _ -> ());
  B.terminate ctx.b (Syn.Goto return_block);
  B.switch_to ctx.b return_block;
  B.terminate ctx.b Syn.Return;
  B.finish b

let lower_program ?lift_temps ?overflow_checks (prog : tprog) =
  let bodies = List.map (lower_function ?lift_temps ?overflow_checks) prog.functions in
  (Syn.program_of_bodies bodies, List.map fst prog.externs)

lib/rustlite/ast.mli: Format Token

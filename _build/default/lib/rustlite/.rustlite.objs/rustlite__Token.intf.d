lib/rustlite/token.mli: Format

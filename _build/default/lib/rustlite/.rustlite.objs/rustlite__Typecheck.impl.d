lib/rustlite/typecheck.ml: Ast Format Hashtbl List Map Option Printf String Token

lib/rustlite/ast.ml: Format String Token

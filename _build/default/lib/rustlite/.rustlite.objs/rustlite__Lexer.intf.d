lib/rustlite/lexer.mli: Token

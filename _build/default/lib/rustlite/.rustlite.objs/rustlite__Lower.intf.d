lib/rustlite/lower.mli: Mir Typecheck

lib/rustlite/pipeline.ml: Format List Lower Mir Parser Result String Typecheck

lib/rustlite/pipeline.mli: Mir

lib/rustlite/typecheck.mli: Ast

lib/rustlite/token.ml: Format Int64 String

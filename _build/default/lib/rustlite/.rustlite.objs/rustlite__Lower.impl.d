lib/rustlite/lower.ml: Ast Int64 List Mir Printf Set String Typecheck

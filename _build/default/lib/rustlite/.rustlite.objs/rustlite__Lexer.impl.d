lib/rustlite/lexer.ml: Buffer Format Int64 List Printf Result String Token

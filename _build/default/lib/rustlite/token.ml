type pos = { line : int; col : int }

let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col

type t = Int of int64 | Ident of string | Kw of string | Punct of string | Eof

type spanned = { tok : t; pos : pos }

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Ident x, Ident y | Kw x, Kw y | Punct x, Punct y -> String.equal x y
  | Eof, Eof -> true
  | (Int _ | Ident _ | Kw _ | Punct _ | Eof), _ -> false

let pp fmt = function
  | Int i -> Format.fprintf fmt "%Ld" i
  | Ident s -> Format.pp_print_string fmt s
  | Kw s -> Format.pp_print_string fmt s
  | Punct s -> Format.pp_print_string fmt s
  | Eof -> Format.pp_print_string fmt "<eof>"

let to_string t = Format.asprintf "%a" pp t

let keywords =
  [
    "fn"; "let"; "mut"; "if"; "else"; "while"; "loop"; "break"; "continue";
    "return"; "struct"; "enum"; "match"; "impl"; "const"; "extern"; "true"; "false"; "as";
    "self"; "u64"; "usize"; "bool";
  ]

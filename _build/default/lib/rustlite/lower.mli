(** Lowering from the typed AST to MIRlight CFGs.

    Performs what rustc's MIR construction does for this subset:

    - splits variables into address-taken {e locals} and pure {e temps}
      (the mem2reg-style lifting of paper Sec. 3.2) — only variables
      whose address is taken with [&] end up in object memory;
    - flattens control flow ([if]/[while]/[loop]/[&&]/[||]) into basic
      blocks with [switchInt] terminators;
    - emits rustc-style [Assert] terminators guarding division and
      remainder by zero;
    - turns method bodies into plain functions whose first parameter is
      the [self] pointer. *)

val lower_function :
  ?lift_temps:bool -> ?overflow_checks:bool -> Typecheck.tfn -> Mir.Syntax.body
(* [lift_temps:false] forces every variable into object memory (the
   ablation of the Sec. 3.2 temp-lifting optimization);
   [overflow_checks:true] emits rustc-debug-style checked +, -, * with
   overflow asserts *)

val lower_program :
  ?lift_temps:bool -> ?overflow_checks:bool -> Typecheck.tprog ->
  Mir.Syntax.program * string list
(** The MIR program plus the names of extern (trusted) functions it
    expects as primitives. *)

(** Recursive-descent parser for Rustlite.

    Rust-style restriction: struct literals are not allowed in [if] /
    [while] condition position (where [{] starts the body instead). *)

val parse : string -> (Ast.program, string) result
(** Lex and parse a full program. *)

val parse_expr : string -> (Ast.expr, string) result
(** For tests: parse a single expression. *)

(** Lexer for Rustlite.

    Supports decimal and [0x] hexadecimal integers with [_] separators,
    line comments ([//]) and nestable block comments, and the operator
    and punctuation set of {!Token}. *)

val tokenize : string -> (Token.spanned list, string) result

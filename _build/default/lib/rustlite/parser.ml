type state = { toks : Token.spanned array; mutable idx : int; mutable no_struct : bool }

exception Parse_error of string

let fail st msg =
  let t = st.toks.(st.idx) in
  raise
    (Parse_error
       (Format.asprintf "parse error at %a: %s (found %a)" Token.pp_pos t.Token.pos
          msg Token.pp t.Token.tok))

let cur st = st.toks.(st.idx).Token.tok
let cur_pos st = st.toks.(st.idx).Token.pos
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let eat st tok =
  if Token.equal (cur st) tok then advance st
  else fail st (Printf.sprintf "expected %s" (Token.to_string tok))

let accept st tok =
  if Token.equal (cur st) tok then (
    advance st;
    true)
  else false

let punct s = Token.Punct s
let kw s = Token.Kw s

let ident st =
  match cur st with
  | Token.Ident name ->
      advance st;
      name
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let rec parse_ty st =
  match cur st with
  | Token.Kw "u64" | Token.Kw "usize" ->
      advance st;
      Ast.Tu64
  | Token.Kw "bool" ->
      advance st;
      Ast.Tbool
  | Token.Punct "(" ->
      advance st;
      eat st (punct ")");
      Ast.Tunit
  | Token.Punct "&" ->
      advance st;
      ignore (accept st (kw "mut"));
      Ast.Tref (parse_ty st)
  | Token.Ident name ->
      advance st;
      Ast.Tstruct name
  | _ -> fail st "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let binop_of_punct = function
  | "+" -> Some Ast.Add
  | "-" -> Some Ast.Sub
  | "*" -> Some Ast.Mul
  | "/" -> Some Ast.Div
  | "%" -> Some Ast.Rem
  | "&" -> Some Ast.And
  | "|" -> Some Ast.Or
  | "^" -> Some Ast.Xor
  | "<<" -> Some Ast.Shl
  | ">>" -> Some Ast.Shr
  | "==" -> Some Ast.Eq
  | "!=" -> Some Ast.Ne
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | "&&" -> Some Ast.Land
  | "||" -> Some Ast.Lor
  | _ -> None

(* smaller binds looser *)
let precedence = function
  | Ast.Lor -> 1
  | Ast.Land -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Or -> 4
  | Ast.Xor -> 5
  | Ast.And -> 6
  | Ast.Shl | Ast.Shr -> 7
  | Ast.Add | Ast.Sub -> 8
  | Ast.Mul | Ast.Div | Ast.Rem -> 9

let mk pos e = { Ast.e; pos }

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match cur st with
  | Token.Punct p -> (
      match binop_of_punct p with
      | Some op when precedence op >= min_prec ->
          let pos = cur_pos st in
          advance st;
          let rhs = parse_expr_prec st (precedence op + 1) in
          climb st (mk pos (Ast.Ebin (op, lhs, rhs))) min_prec
      | _ -> lhs)
  | _ -> lhs

and parse_unary st =
  let pos = cur_pos st in
  match cur st with
  | Token.Punct "!" ->
      advance st;
      mk pos (Ast.Eun (Ast.Not, parse_unary st))
  | Token.Punct "-" ->
      advance st;
      mk pos (Ast.Eun (Ast.Neg, parse_unary st))
  | Token.Punct "*" ->
      advance st;
      mk pos (Ast.Ederef (parse_unary st))
  | Token.Punct "&" ->
      advance st;
      ignore (accept st (kw "mut"));
      mk pos (Ast.Eref (parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match cur st with
    | Token.Punct "." ->
        advance st;
        let pos = cur_pos st in
        let name = ident st in
        if Token.equal (cur st) (punct "(") then begin
          let args = parse_call_args st in
          e := mk pos (Ast.Emethod (!e, name, args))
        end
        else e := mk pos (Ast.Efield (!e, name))
    | Token.Kw "as" ->
        advance st;
        let pos = cur_pos st in
        let ty = parse_ty st in
        e := mk pos (Ast.Ecast (!e, ty))
    | _ -> continue_ := false
  done;
  !e

and parse_call_args st =
  eat st (punct "(");
  let args = ref [] in
  if not (Token.equal (cur st) (punct ")")) then begin
    let saved = st.no_struct in
    st.no_struct <- false;
    args := [ parse_expr st ];
    while accept st (punct ",") do
      args := parse_expr st :: !args
    done;
    st.no_struct <- saved
  end;
  eat st (punct ")");
  List.rev !args

and parse_primary st =
  let pos = cur_pos st in
  match cur st with
  | Token.Int i ->
      advance st;
      mk pos (Ast.Eint i)
  | Token.Kw "true" ->
      advance st;
      mk pos (Ast.Ebool true)
  | Token.Kw "false" ->
      advance st;
      mk pos (Ast.Ebool false)
  | Token.Kw "self" ->
      advance st;
      mk pos (Ast.Evar "self")
  | Token.Punct "(" ->
      advance st;
      if accept st (punct ")") then mk pos Ast.Eunit
      else begin
        let saved = st.no_struct in
        st.no_struct <- false;
        let e = parse_expr st in
        st.no_struct <- saved;
        eat st (punct ")");
        e
      end
  | Token.Ident name ->
      advance st;
      if Token.equal (cur st) (punct "::") then begin
        advance st;
        let variant = ident st in
        let args =
          if Token.equal (cur st) (punct "(") then parse_call_args st else []
        in
        mk pos (Ast.Evariant (name, variant, args))
      end
      else if Token.equal (cur st) (punct "(") then
        let args = parse_call_args st in
        mk pos (Ast.Ecall (name, args))
      else if Token.equal (cur st) (punct "{") && not st.no_struct then begin
        advance st;
        let fields = ref [] in
        while not (Token.equal (cur st) (punct "}")) do
          let f = ident st in
          eat st (punct ":");
          fields := (f, parse_expr st) :: !fields;
          if not (Token.equal (cur st) (punct "}")) then eat st (punct ",")
        done;
        eat st (punct "}");
        mk pos (Ast.Estruct (name, List.rev !fields))
      end
      else mk pos (Ast.Evar name)
  | _ -> fail st "expected an expression"

and parse_expr st = parse_expr_prec st 0

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let parse_condition st =
  let saved = st.no_struct in
  st.no_struct <- true;
  let e = parse_expr st in
  st.no_struct <- saved;
  e

let rec parse_block st =
  eat st (punct "{");
  let stmts = ref [] in
  while not (Token.equal (cur st) (punct "}")) do
    stmts := parse_stmt st :: !stmts
  done;
  eat st (punct "}");
  List.rev !stmts

and parse_stmt st =
  let spos = cur_pos st in
  let mk_s s = { Ast.s; spos } in
  match cur st with
  | Token.Kw "let" ->
      advance st;
      let mut = accept st (kw "mut") in
      let name = ident st in
      let ty = if accept st (punct ":") then Some (parse_ty st) else None in
      eat st (punct "=");
      let init = parse_expr st in
      eat st (punct ";");
      mk_s (Ast.Slet { mut; name; ty; init })
  | Token.Kw "if" -> parse_if st spos
  | Token.Kw "while" ->
      advance st;
      let cond = parse_condition st in
      let body = parse_block st in
      mk_s (Ast.Swhile (cond, body))
  | Token.Kw "loop" ->
      advance st;
      let body = parse_block st in
      mk_s (Ast.Sloop body)
  | Token.Kw "match" ->
      advance st;
      let scrutinee = parse_condition st in
      eat st (punct "{");
      let arms = ref [] in
      while not (Token.equal (cur st) (punct "}")) do
        let pat =
          match cur st with
          | Token.Ident "_" ->
              advance st;
              Ast.Pwild
          | Token.Ident enum_name ->
              advance st;
              eat st (punct "::");
              let variant = ident st in
              let binders = ref [] in
              if accept st (punct "(") then begin
                if not (Token.equal (cur st) (punct ")")) then begin
                  binders := [ ident st ];
                  while accept st (punct ",") do
                    binders := ident st :: !binders
                  done
                end;
                eat st (punct ")")
              end;
              Ast.Pvariant (enum_name, variant, List.rev !binders)
          | _ -> fail st "expected a match pattern"
        in
        eat st (punct "=>");
        let body = parse_block st in
        ignore (accept st (punct ","));
        arms := (pat, body) :: !arms
      done;
      eat st (punct "}");
      mk_s (Ast.Smatch (scrutinee, List.rev !arms))
  | Token.Kw "break" ->
      advance st;
      eat st (punct ";");
      mk_s Ast.Sbreak
  | Token.Kw "continue" ->
      advance st;
      eat st (punct ";");
      mk_s Ast.Scontinue
  | Token.Kw "return" ->
      advance st;
      if accept st (punct ";") then mk_s (Ast.Sreturn None)
      else begin
        let e = parse_expr st in
        eat st (punct ";");
        mk_s (Ast.Sreturn (Some e))
      end
  | _ ->
      let e = parse_expr st in
      if accept st (punct "=") then begin
        let rhs = parse_expr st in
        eat st (punct ";");
        mk_s (Ast.Sassign (e, rhs))
      end
      else if Token.equal (cur st) (punct "}") then
        (* Rust tail expression: the block's value.  Rustlite only has
           statement blocks, so a tail expression is the function's
           return value. *)
        mk_s (Ast.Sreturn (Some e))
      else begin
        eat st (punct ";");
        mk_s (Ast.Sexpr e)
      end

and parse_if st spos =
  eat st (kw "if");
  let cond = parse_condition st in
  let then_blk = parse_block st in
  let else_blk =
    if accept st (kw "else") then
      if Token.equal (cur st) (kw "if") then Some [ parse_if st (cur_pos st) ]
      else Some (parse_block st)
    else None
  in
  { Ast.s = Ast.Sif (cond, then_blk, else_blk); spos }

(* ------------------------------------------------------------------ *)
(* Items                                                               *)

let parse_params st ~allow_self =
  eat st (punct "(");
  let self_param = ref Ast.No_self in
  let params = ref [] in
  let first = ref true in
  while not (Token.equal (cur st) (punct ")")) do
    if not !first then eat st (punct ",");
    (match (cur st, !first && allow_self) with
    | Token.Punct "&", true ->
        advance st;
        let mut = accept st (kw "mut") in
        eat st (kw "self");
        self_param := (if mut then Ast.Self_ref_mut else Ast.Self_ref)
    | _ ->
        let name = ident st in
        eat st (punct ":");
        let ty = parse_ty st in
        params := (name, ty) :: !params);
    first := false
  done;
  eat st (punct ")");
  (!self_param, List.rev !params)

let parse_ret st = if accept st (punct "->") then parse_ty st else Ast.Tunit

let parse_fndef st ~allow_self =
  let fn_pos = cur_pos st in
  eat st (kw "fn");
  let fn_name = ident st in
  let self_param, params = parse_params st ~allow_self in
  let ret = parse_ret st in
  let body = parse_block st in
  { Ast.fn_name; self_param; params; ret; body; fn_pos }

let parse_item st =
  match cur st with
  | Token.Kw "const" ->
      advance st;
      let name = ident st in
      eat st (punct ":");
      let _ty = parse_ty st in
      eat st (punct "=");
      let v =
        match cur st with
        | Token.Int i ->
            advance st;
            i
        | _ -> fail st "const initializer must be an integer literal"
      in
      eat st (punct ";");
      Ast.Iconst (name, v)
  | Token.Kw "enum" ->
      advance st;
      let name = ident st in
      eat st (punct "{");
      let variants = ref [] in
      while not (Token.equal (cur st) (punct "}")) do
        let vname = ident st in
        let payload = ref [] in
        if accept st (punct "(") then begin
          if not (Token.equal (cur st) (punct ")")) then begin
            payload := [ parse_ty st ];
            while accept st (punct ",") do
              payload := parse_ty st :: !payload
            done
          end;
          eat st (punct ")")
        end;
        variants := (vname, List.rev !payload) :: !variants;
        if not (Token.equal (cur st) (punct "}")) then eat st (punct ",")
      done;
      eat st (punct "}");
      Ast.Ienum (name, List.rev !variants)
  | Token.Kw "struct" ->
      advance st;
      let name = ident st in
      eat st (punct "{");
      let fields = ref [] in
      while not (Token.equal (cur st) (punct "}")) do
        let f = ident st in
        eat st (punct ":");
        let ty = parse_ty st in
        fields := (f, ty) :: !fields;
        if not (Token.equal (cur st) (punct "}")) then eat st (punct ",")
      done;
      eat st (punct "}");
      Ast.Istruct (name, List.rev !fields)
  | Token.Kw "extern" ->
      advance st;
      eat st (kw "fn");
      let ex_name = ident st in
      let _, ex_params = parse_params st ~allow_self:false in
      let ex_ret = parse_ret st in
      eat st (punct ";");
      Ast.Iextern { ex_name; ex_params; ex_ret }
  | Token.Kw "fn" -> Ast.Ifn (parse_fndef st ~allow_self:false)
  | Token.Kw "impl" ->
      advance st;
      let name = ident st in
      eat st (punct "{");
      let fns = ref [] in
      while not (Token.equal (cur st) (punct "}")) do
        fns := parse_fndef st ~allow_self:true :: !fns
      done;
      eat st (punct "}");
      Ast.Iimpl (name, List.rev !fns)
  | _ -> fail st "expected an item (const, struct, extern, fn, impl)"

let with_tokens src f =
  match Lexer.tokenize src with
  | Error _ as e -> e
  | Ok toks -> (
      let st = { toks = Array.of_list toks; idx = 0; no_struct = false } in
      try Ok (f st) with Parse_error msg -> Error msg)

let parse src =
  with_tokens src (fun st ->
      let items = ref [] in
      while not (Token.equal (cur st) Token.Eof) do
        items := parse_item st :: !items
      done;
      List.rev !items)

let parse_expr src =
  with_tokens src (fun st ->
      let e = parse_expr st in
      if not (Token.equal (cur st) Token.Eof) then fail st "trailing input";
      e)

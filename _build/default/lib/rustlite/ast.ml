type ty = Tu64 | Tbool | Tunit | Tref of ty | Tstruct of string

let rec ty_equal a b =
  match (a, b) with
  | Tu64, Tu64 | Tbool, Tbool | Tunit, Tunit -> true
  | Tref x, Tref y -> ty_equal x y
  | Tstruct x, Tstruct y -> String.equal x y
  | (Tu64 | Tbool | Tunit | Tref _ | Tstruct _), _ -> false

let rec pp_ty fmt = function
  | Tu64 -> Format.pp_print_string fmt "u64"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tunit -> Format.pp_print_string fmt "()"
  | Tref t -> Format.fprintf fmt "&%a" pp_ty t
  | Tstruct s -> Format.pp_print_string fmt s

let ty_to_string t = Format.asprintf "%a" pp_ty t

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Not | Neg

type expr = { e : expr_kind; pos : Token.pos }

and expr_kind =
  | Eint of int64
  | Ebool of bool
  | Eunit
  | Evar of string
  | Efield of expr * string
  | Ederef of expr
  | Eref of expr
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Emethod of expr * string * expr list
  | Estruct of string * (string * expr) list
  | Evariant of string * string * expr list
      (* Enum::Variant(args) *)
  | Ecast of expr * ty

type stmt = { s : stmt_kind; spos : Token.pos }

and stmt_kind =
  | Slet of { mut : bool; name : string; ty : ty option; init : expr }
  | Sassign of expr * expr
  | Sexpr of expr
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sloop of block
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Smatch of expr * (pattern * block) list

and pattern =
  | Pvariant of string * string * string list
      (* Enum::Variant(x, y) *)
  | Pwild

and block = stmt list

type self_kind = No_self | Self_ref | Self_ref_mut

type fndef = {
  fn_name : string;
  self_param : self_kind;
  params : (string * ty) list;
  ret : ty;
  body : block;
  fn_pos : Token.pos;
}

type item =
  | Iconst of string * int64
  | Istruct of string * (string * ty) list
  | Ienum of string * (string * ty list) list
      (* variants carry positional payloads *)
  | Iextern of { ex_name : string; ex_params : (string * ty) list; ex_ret : ty }
  | Ifn of fndef
  | Iimpl of string * fndef list

type program = item list

let method_symbol struct_name m = struct_name ^ "::" ^ m

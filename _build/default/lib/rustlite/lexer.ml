let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

type cursor = { src : string; mutable off : int; mutable line : int; mutable col : int }

let peek cur = if cur.off < String.length cur.src then Some cur.src.[cur.off] else None

let peek2 cur =
  if cur.off + 1 < String.length cur.src then Some cur.src.[cur.off + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.off <- cur.off + 1

let pos cur = { Token.line = cur.line; col = cur.col }

let error cur msg =
  Error (Format.asprintf "lex error at %a: %s" Token.pp_pos (pos cur) msg)

(* longest-match first *)
let puncts =
  [
    "<<"; ">>"; "=="; "!="; "<="; ">="; "&&"; "||"; "->"; "=>"; "::";
    "("; ")"; "{"; "}"; ","; ";"; ":"; "."; "="; "<"; ">"; "+"; "-"; "*";
    "/"; "%"; "&"; "|"; "^"; "!"; "["; "]";
  ]

let tokenize src =
  let cur = { src; off = 0; line = 1; col = 1 } in
  let out = ref [] in
  let push tok p = out := { Token.tok; pos = p } :: !out in
  let rec skip_block_comment depth =
    if depth = 0 then Ok ()
    else
      match (peek cur, peek2 cur) with
      | Some '*', Some '/' ->
          advance cur;
          advance cur;
          skip_block_comment (depth - 1)
      | Some '/', Some '*' ->
          advance cur;
          advance cur;
          skip_block_comment (depth + 1)
      | Some _, _ ->
          advance cur;
          skip_block_comment depth
      | None, _ -> error cur "unterminated block comment"
  in
  let lex_int p =
    let start = cur.off in
    let hex =
      match (peek cur, peek2 cur) with
      | Some '0', Some ('x' | 'X') ->
          advance cur;
          advance cur;
          true
      | _ -> false
    in
    let digits = Buffer.create 8 in
    let rec go () =
      match peek cur with
      | Some c when (if hex then is_hex c else is_digit c) ->
          Buffer.add_char digits c;
          advance cur;
          go ()
      | Some '_' ->
          advance cur;
          go ()
      | _ -> ()
    in
    go ();
    if Buffer.length digits = 0 then
      error cur (Printf.sprintf "malformed integer literal at offset %d" start)
    else
      let text = (if hex then "0x" else "") ^ Buffer.contents digits in
      match Int64.of_string_opt (if hex then text else Buffer.contents digits) with
      | Some v ->
          push (Token.Int v) p;
          Ok ()
      | None -> error cur (Printf.sprintf "integer literal out of range: %s" text)
  in
  let lex_ident p =
    let b = Buffer.create 8 in
    let rec go () =
      match peek cur with
      | Some c when is_ident c ->
          Buffer.add_char b c;
          advance cur;
          go ()
      | _ -> ()
    in
    go ();
    let name = Buffer.contents b in
    if List.mem name Token.keywords then push (Token.Kw name) p
    else push (Token.Ident name) p;
    Ok ()
  in
  let lex_punct p =
    let matches s =
      cur.off + String.length s <= String.length src
      && String.sub src cur.off (String.length s) = s
    in
    match List.find_opt matches puncts with
    | Some s ->
        for _ = 1 to String.length s do
          advance cur
        done;
        push (Token.Punct s) p;
        Ok ()
    | None -> error cur (Printf.sprintf "unexpected character %C" src.[cur.off])
  in
  let rec loop () =
    match peek cur with
    | None ->
        push Token.Eof (pos cur);
        Ok (List.rev !out)
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance cur;
        loop ()
    | Some '/' when peek2 cur = Some '/' ->
        let rec to_eol () =
          match peek cur with
          | Some '\n' | None -> ()
          | Some _ ->
              advance cur;
              to_eol ()
        in
        to_eol ();
        loop ()
    | Some '/' when peek2 cur = Some '*' ->
        advance cur;
        advance cur;
        Result.bind (skip_block_comment 1) (fun () -> loop ())
    | Some c when is_digit c -> Result.bind (lex_int (pos cur)) (fun () -> loop ())
    | Some c when is_ident_start c -> Result.bind (lex_ident (pos cur)) (fun () -> loop ())
    | Some _ -> Result.bind (lex_punct (pos cur)) (fun () -> loop ())
  in
  loop ()

(** Type checking and name resolution.

    Produces a typed AST: constants are folded, field names become
    indices, method calls become calls of their mangled symbol with an
    explicit (auto-referenced) receiver, and one level of auto-deref is
    resolved for field access and method receivers — the jobs rustc has
    already done by the time MIR exists. *)

type texpr = { te : texpr_kind; tty : Ast.ty }

and texpr_kind =
  | Tint of int64
  | Tbool_lit of bool
  | Tunit_lit
  | Tlocal of string  (** local variable or parameter (including self) *)
  | Tfield of texpr * int
  | Tderef of texpr
  | Tref_of of texpr
  | Tbin of Ast.binop * texpr * texpr
  | Tun of Ast.unop * texpr
  | Tcall of string * texpr list
      (** direct or method call; receivers are already explicit first
          arguments *)
  | Tstruct_lit of string * texpr list  (** fields in declaration order *)
  | Tvariant_lit of string * int * texpr list
      (** enum name, variant index, payload *)
  | Tcast of texpr

type tstmt =
  | TSlet of string * texpr
  | TSassign of texpr * texpr  (** lhs is a place *)
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSloop of tstmt list
  | TSbreak
  | TScontinue
  | TSreturn of texpr option
  | TSmatch of texpr * tarm list * tstmt list option
      (** scrutinee, variant arms, optional wildcard arm *)

and tarm = {
  arm_enum : string;
  arm_variant : int;
  arm_binders : (string * Ast.ty) list;
  arm_body : tstmt list;
}

type signature = { sig_params : Ast.ty list; sig_ret : Ast.ty }

type tfn = {
  symbol : string;  (** plain name, or ["Struct::method"] *)
  tparams : (string * Ast.ty) list;  (** self first when present *)
  tret : Ast.ty;
  tbody : tstmt list;
}

type tprog = {
  structs : (string * (string * Ast.ty) list) list;
  externs : (string * signature) list;
  functions : tfn list;
}

val check : Ast.program -> (tprog, string) result

val is_place : texpr -> bool
(** Whether the typed expression denotes a place (assignable /
    referenceable). *)

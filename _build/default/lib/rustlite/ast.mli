(** Abstract syntax of Rustlite. *)

type ty =
  | Tu64
  | Tbool
  | Tunit
  | Tref of ty  (** [&T] and [&mut T]; mutability is erased, as in MIR *)
  | Tstruct of string

val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuiting && and || *)

type unop = Not | Neg

type expr = { e : expr_kind; pos : Token.pos }

and expr_kind =
  | Eint of int64
  | Ebool of bool
  | Eunit
  | Evar of string  (** variable, constant, or [self] *)
  | Efield of expr * string
  | Ederef of expr
  | Eref of expr  (** [&e] / [&mut e]; the operand must be a place *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Emethod of expr * string * expr list
  | Estruct of string * (string * expr) list
  | Evariant of string * string * expr list
      (** [Enum::Variant(args)] *)
  | Ecast of expr * ty

type stmt = { s : stmt_kind; spos : Token.pos }

and stmt_kind =
  | Slet of { mut : bool; name : string; ty : ty option; init : expr }
  | Sassign of expr * expr  (** place := value *)
  | Sexpr of expr
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sloop of block
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Smatch of expr * (pattern * block) list

and pattern =
  | Pvariant of string * string * string list
      (** [Enum::Variant(x, y)]; binders are plain identifiers *)
  | Pwild

and block = stmt list

type self_kind = No_self | Self_ref | Self_ref_mut

type fndef = {
  fn_name : string;
  self_param : self_kind;
  params : (string * ty) list;
  ret : ty;
  body : block;
  fn_pos : Token.pos;
}

type item =
  | Iconst of string * int64
  | Istruct of string * (string * ty) list
  | Ienum of string * (string * ty list) list
      (** variants carry positional payloads *)
  | Iextern of { ex_name : string; ex_params : (string * ty) list; ex_ret : ty }
  | Ifn of fndef
  | Iimpl of string * fndef list

type program = item list

val method_symbol : string -> string -> string
(** [method_symbol "FrameAlloc" "alloc"] is ["FrameAlloc::alloc"], the
    MIR-level function name. *)

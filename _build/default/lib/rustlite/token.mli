(** Tokens of the Rustlite surface language.

    Rustlite is the Rust subset the retrofitted HyperEnclave memory
    module uses (paper Sec. 2.3): structs and [impl] blocks with
    [self] methods, references, integer arithmetic, [if]/[while]/
    [loop], named constants instead of value-carrying enums, and
    [extern] declarations for trusted-layer primitives. *)

type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

type t =
  | Int of int64
  | Ident of string
  | Kw of string  (** fn, let, mut, if, else, while, loop, break, continue,
                      return, struct, enum, match, impl, const, extern, true,
                      false, as, self, u64, usize, bool *)
  | Punct of string
      (** one of: ( ) {{ }} , ; : :: -> . = == != < <= > >= + - * / % & && |
          || ^ << >> ! &mut *)
  | Eof

type spanned = { tok : t; pos : pos }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val keywords : string list

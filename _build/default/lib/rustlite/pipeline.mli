(** The full mirlightgen pipeline (paper Sec. 3.3, Fig. 3):
    source → tokens → AST → typed AST → MIRlight → validation. *)

type output = {
  program : Mir.Syntax.program;
  externs : string list;  (** trusted primitives the program expects *)
  function_names : string list;
  mir_lines : int;  (** Table 1's "lines of mirlight code" statistic *)
  source_lines : int;
}

val compile : ?lift_temps:bool -> ?overflow_checks:bool -> string -> (output, string) result
(** Compile Rustlite source.  Fails on lex, parse, or type errors, and
    on MIR that does not pass {!Mir.Validate} (an internal error). *)

val compile_exn : string -> output

val emit : output -> string
(** Pretty-print the compiled program in MIR form (what the
    [mirlightgen] CLI prints). *)

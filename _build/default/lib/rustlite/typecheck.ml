type texpr = { te : texpr_kind; tty : Ast.ty }

and texpr_kind =
  | Tint of int64
  | Tbool_lit of bool
  | Tunit_lit
  | Tlocal of string
  | Tfield of texpr * int
  | Tderef of texpr
  | Tref_of of texpr
  | Tbin of Ast.binop * texpr * texpr
  | Tun of Ast.unop * texpr
  | Tcall of string * texpr list
  | Tstruct_lit of string * texpr list
  | Tvariant_lit of string * int * texpr list
  | Tcast of texpr

type tstmt =
  | TSlet of string * texpr
  | TSassign of texpr * texpr
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSloop of tstmt list
  | TSbreak
  | TScontinue
  | TSreturn of texpr option
  | TSmatch of texpr * tarm list * tstmt list option

and tarm = {
  arm_enum : string;
  arm_variant : int;
  arm_binders : (string * Ast.ty) list;
  arm_body : tstmt list;
}

type signature = { sig_params : Ast.ty list; sig_ret : Ast.ty }

type tfn = {
  symbol : string;
  tparams : (string * Ast.ty) list;
  tret : Ast.ty;
  tbody : tstmt list;
}

type tprog = {
  structs : (string * (string * Ast.ty) list) list;
  externs : (string * signature) list;
  functions : tfn list;
}

exception Type_error of string

module StrMap = Map.Make (String)

type env = {
  consts : int64 StrMap.t;
  structs : (string * Ast.ty) list StrMap.t;
  enums : (string * Ast.ty list) list StrMap.t;
      (* enum name -> [(variant, payload types)] in declaration order *)
  sigs : signature StrMap.t;  (* all callables: fns, externs, methods *)
}

type fctx = {
  env : env;
  locals : (Ast.ty * bool (* mutable *)) StrMap.t;
  ret : Ast.ty;
  loop_depth : int;
}

let err pos fmt =
  Format.kasprintf
    (fun msg ->
      raise (Type_error (Format.asprintf "type error at %a: %s" Token.pp_pos pos msg)))
    fmt

let rec is_place e =
  match e.te with
  | Tlocal _ | Tderef _ -> true
  | Tfield (base, _) -> is_place base
  | Tint _ | Tbool_lit _ | Tunit_lit | Tref_of _ | Tbin _ | Tun _ | Tcall _
  | Tstruct_lit _ | Tvariant_lit _ | Tcast _ ->
      false

let struct_fields env pos name =
  match StrMap.find_opt name env.structs with
  | Some fields -> fields
  | None ->
      if StrMap.mem name env.enums then
        err pos "%s is an enum; use match to inspect it" name
      else err pos "unknown struct %s" name

let enum_variant env pos ename vname =
  match StrMap.find_opt ename env.enums with
  | None -> err pos "unknown enum %s" ename
  | Some variants -> (
      let rec go i = function
        | [] -> err pos "enum %s has no variant %s" ename vname
        | (v, payload) :: rest ->
            if String.equal v vname then (i, payload) else go (i + 1) rest
      in
      go 0 variants)

let field_index env pos struct_name field =
  let fields = struct_fields env pos struct_name in
  let rec go i = function
    | [] -> err pos "struct %s has no field %s" struct_name field
    | (f, ty) :: rest -> if String.equal f field then (i, ty) else go (i + 1) rest
  in
  go 0 fields

(* Auto-deref one level for field access and method receivers. *)
let rec base_struct pos e =
  match e.tty with
  | Ast.Tstruct s -> (e, s)
  | Ast.Tref (Ast.Tstruct s) -> ({ te = Tderef e; tty = Ast.Tstruct s }, s)
  | Ast.Tref (Ast.Tref _ as inner) ->
      base_struct pos { te = Tderef e; tty = inner }
  | ty -> err pos "expected a struct value, got %s" (Ast.ty_to_string ty)

let rec check_expr fx (e : Ast.expr) : texpr =
  let pos = e.Ast.pos in
  match e.Ast.e with
  | Ast.Eint i -> { te = Tint i; tty = Ast.Tu64 }
  | Ast.Ebool b -> { te = Tbool_lit b; tty = Ast.Tbool }
  | Ast.Eunit -> { te = Tunit_lit; tty = Ast.Tunit }
  | Ast.Evar name -> (
      match StrMap.find_opt name fx.locals with
      | Some (ty, _) -> { te = Tlocal name; tty = ty }
      | None -> (
          match StrMap.find_opt name fx.env.consts with
          | Some v -> { te = Tint v; tty = Ast.Tu64 }
          | None -> err pos "unbound name %s" name))
  | Ast.Efield (base, field) ->
      let tbase = check_expr fx base in
      let tbase, sname = base_struct pos tbase in
      let index, fty = field_index fx.env pos sname field in
      { te = Tfield (tbase, index); tty = fty }
  | Ast.Ederef inner -> (
      let t = check_expr fx inner in
      match t.tty with
      | Ast.Tref ty -> { te = Tderef t; tty = ty }
      | ty -> err pos "cannot dereference non-reference %s" (Ast.ty_to_string ty))
  | Ast.Eref inner ->
      let t = check_expr fx inner in
      if not (is_place t) then err pos "cannot take a reference to a temporary value"
      else { te = Tref_of t; tty = Ast.Tref t.tty }
  | Ast.Ebin (op, a, b) -> check_binop fx pos op a b
  | Ast.Eun (Ast.Not, a) -> (
      let t = check_expr fx a in
      match t.tty with
      | Ast.Tbool | Ast.Tu64 -> { te = Tun (Ast.Not, t); tty = t.tty }
      | ty -> err pos "operator ! expects bool or u64, got %s" (Ast.ty_to_string ty))
  | Ast.Eun (Ast.Neg, a) -> (
      let t = check_expr fx a in
      match t.tty with
      | Ast.Tu64 -> { te = Tun (Ast.Neg, t); tty = Ast.Tu64 }
      | ty -> err pos "operator - expects u64, got %s" (Ast.ty_to_string ty))
  | Ast.Ecall (name, args) -> (
      match StrMap.find_opt name fx.env.sigs with
      | None -> err pos "call of unknown function %s" name
      | Some s ->
          let targs = check_args fx pos name s.sig_params args in
          { te = Tcall (name, targs); tty = s.sig_ret })
  | Ast.Emethod (recv, m, args) -> (
      let trecv = check_expr fx recv in
      let adjusted, sname =
        (* auto-ref: methods take &self; a struct-typed receiver is
           referenced, a reference-typed one passes through *)
        match trecv.tty with
        | Ast.Tstruct s ->
            if not (is_place trecv) then
              err pos "method receiver must be a place (cannot borrow a temporary)"
            else ({ te = Tref_of trecv; tty = Ast.Tref trecv.tty }, s)
        | Ast.Tref (Ast.Tstruct s) -> (trecv, s)
        | ty -> err pos "method call on non-struct %s" (Ast.ty_to_string ty)
      in
      let symbol = Ast.method_symbol sname m in
      match StrMap.find_opt symbol fx.env.sigs with
      | None -> err pos "struct %s has no method %s" sname m
      | Some s ->
          (match s.sig_params with
          | Ast.Tref (Ast.Tstruct s0) :: _ when String.equal s0 sname -> ()
          | _ -> err pos "%s is not a method" symbol);
          let targs =
            check_args fx pos symbol (List.tl s.sig_params) args
          in
          { te = Tcall (symbol, adjusted :: targs); tty = s.sig_ret })
  | Ast.Estruct (name, inits) ->
      let fields = struct_fields fx.env pos name in
      if List.length inits <> List.length fields then
        err pos "struct %s literal must initialize all %d fields" name
          (List.length fields);
      let ordered =
        List.map
          (fun (fname, fty) ->
            match List.find_opt (fun (n, _) -> String.equal n fname) inits with
            | None -> err pos "struct %s literal is missing field %s" name fname
            | Some (_, init) ->
                let t = check_expr fx init in
                if not (Ast.ty_equal t.tty fty) then
                  err pos "field %s of %s expects %s, got %s" fname name
                    (Ast.ty_to_string fty) (Ast.ty_to_string t.tty)
                else t)
          fields
      in
      { te = Tstruct_lit (name, ordered); tty = Ast.Tstruct name }
  | Ast.Evariant (ename, vname, args) ->
      let index, payload = enum_variant fx.env pos ename vname in
      let targs = check_args fx pos (ename ^ "::" ^ vname) payload args in
      { te = Tvariant_lit (ename, index, targs); tty = Ast.Tstruct ename }
  | Ast.Ecast (inner, ty) -> (
      let t = check_expr fx inner in
      match (t.tty, ty) with
      | (Ast.Tu64 | Ast.Tbool), Ast.Tu64 -> { te = Tcast t; tty = Ast.Tu64 }
      | _ ->
          err pos "unsupported cast from %s to %s" (Ast.ty_to_string t.tty)
            (Ast.ty_to_string ty))

and check_binop fx pos op a b =
  let ta = check_expr fx a in
  let tb = check_expr fx b in
  let need ty t =
    if not (Ast.ty_equal t.tty ty) then
      err pos "operator expects %s, got %s" (Ast.ty_to_string ty)
        (Ast.ty_to_string t.tty)
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.And | Ast.Or | Ast.Xor
  | Ast.Shl | Ast.Shr ->
      need Ast.Tu64 ta;
      need Ast.Tu64 tb;
      { te = Tbin (op, ta, tb); tty = Ast.Tu64 }
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      need Ast.Tu64 ta;
      need Ast.Tu64 tb;
      { te = Tbin (op, ta, tb); tty = Ast.Tbool }
  | Ast.Eq | Ast.Ne ->
      if not (Ast.ty_equal ta.tty tb.tty) then
        err pos "comparison of %s with %s" (Ast.ty_to_string ta.tty)
          (Ast.ty_to_string tb.tty)
      else (
        (match ta.tty with
        | Ast.Tu64 | Ast.Tbool -> ()
        | ty -> err pos "cannot compare values of type %s" (Ast.ty_to_string ty));
        { te = Tbin (op, ta, tb); tty = Ast.Tbool })
  | Ast.Land | Ast.Lor ->
      need Ast.Tbool ta;
      need Ast.Tbool tb;
      { te = Tbin (op, ta, tb); tty = Ast.Tbool }

and check_args fx pos what param_tys args =
  if List.length param_tys <> List.length args then
    err pos "%s expects %d arguments, got %d" what (List.length param_tys)
      (List.length args);
  List.map2
    (fun pty arg ->
      let t = check_expr fx arg in
      if not (Ast.ty_equal t.tty pty) then
        err pos "%s: argument expects %s, got %s" what (Ast.ty_to_string pty)
          (Ast.ty_to_string t.tty)
      else t)
    param_tys args

let rec check_stmts fx stmts = snd (List.fold_left check_stmt (fx, []) stmts) |> List.rev

and check_stmt (fx, acc) (st : Ast.stmt) =
  let pos = st.Ast.spos in
  match st.Ast.s with
  | Ast.Slet { mut; name; ty; init } ->
      let t = check_expr fx init in
      (match ty with
      | Some annot when not (Ast.ty_equal annot t.tty) ->
          err pos "let %s: %s initialized with %s" name (Ast.ty_to_string annot)
            (Ast.ty_to_string t.tty)
      | Some _ | None -> ());
      let fx = { fx with locals = StrMap.add name (t.tty, mut) fx.locals } in
      (fx, TSlet (name, t) :: acc)
  | Ast.Sassign (lhs, rhs) ->
      let tl = check_expr fx lhs in
      if not (is_place tl) then err pos "left side of assignment is not a place";
      (* direct assignment to an immutable binding is rejected, like rustc *)
      (match tl.te with
      | Tlocal name -> (
          match StrMap.find_opt name fx.locals with
          | Some (_, false) when not (String.equal name "self") ->
              err pos "cannot assign to immutable binding %s" name
          | _ -> ())
      | _ -> ());
      let tr = check_expr fx rhs in
      if not (Ast.ty_equal tl.tty tr.tty) then
        err pos "assignment of %s to place of type %s" (Ast.ty_to_string tr.tty)
          (Ast.ty_to_string tl.tty);
      (fx, TSassign (tl, tr) :: acc)
  | Ast.Sexpr e -> (fx, TSexpr (check_expr fx e) :: acc)
  | Ast.Sif (cond, then_blk, else_blk) ->
      let tc = check_expr fx cond in
      if not (Ast.ty_equal tc.tty Ast.Tbool) then err pos "if condition must be bool";
      let tt = check_stmts fx then_blk in
      let te = match else_blk with None -> [] | Some b -> check_stmts fx b in
      (fx, TSif (tc, tt, te) :: acc)
  | Ast.Swhile (cond, body) ->
      let tc = check_expr fx cond in
      if not (Ast.ty_equal tc.tty Ast.Tbool) then err pos "while condition must be bool";
      let tb = check_stmts { fx with loop_depth = fx.loop_depth + 1 } body in
      (fx, TSwhile (tc, tb) :: acc)
  | Ast.Sloop body ->
      let tb = check_stmts { fx with loop_depth = fx.loop_depth + 1 } body in
      (fx, TSloop tb :: acc)
  | Ast.Sbreak ->
      if fx.loop_depth = 0 then err pos "break outside a loop";
      (fx, TSbreak :: acc)
  | Ast.Scontinue ->
      if fx.loop_depth = 0 then err pos "continue outside a loop";
      (fx, TScontinue :: acc)
  | Ast.Sreturn e ->
      let t = Option.map (check_expr fx) e in
      let actual = match t with None -> Ast.Tunit | Some t -> t.tty in
      if not (Ast.ty_equal actual fx.ret) then
        err pos "return of %s from function returning %s" (Ast.ty_to_string actual)
          (Ast.ty_to_string fx.ret);
      (fx, TSreturn t :: acc)
  | Ast.Smatch (scrutinee, arms) ->
      let ts = check_expr fx scrutinee in
      let ename =
        match ts.tty with
        | Ast.Tstruct n when StrMap.mem n fx.env.enums -> n
        | ty -> err pos "match on non-enum value of type %s" (Ast.ty_to_string ty)
      in
      let variants = StrMap.find ename fx.env.enums in
      let seen = Hashtbl.create 8 in
      let wild = ref None in
      let tarms =
        List.filter_map
          (fun (pat, body) ->
            match pat with
            | Ast.Pwild ->
                if !wild <> None then err pos "duplicate wildcard arm";
                wild := Some (check_stmts fx body);
                None
            | Ast.Pvariant (e, v, binders) ->
                if not (String.equal e ename) then
                  err pos "pattern mentions %s but the scrutinee is a %s" e ename;
                let index, payload = enum_variant fx.env pos e v in
                if Hashtbl.mem seen index then err pos "duplicate arm for %s::%s" e v;
                Hashtbl.add seen index ();
                if List.length binders <> List.length payload then
                  err pos "%s::%s carries %d fields, pattern binds %d" e v
                    (List.length payload) (List.length binders);
                let arm_binders = List.combine binders payload in
                let fx_arm =
                  {
                    fx with
                    locals =
                      List.fold_left
                        (fun m (n, ty) -> StrMap.add n (ty, false) m)
                        fx.locals arm_binders;
                  }
                in
                Some
                  {
                    arm_enum = ename;
                    arm_variant = index;
                    arm_binders;
                    arm_body = check_stmts fx_arm body;
                  })
          arms
      in
      if !wild = None && Hashtbl.length seen < List.length variants then
        err pos "non-exhaustive match on %s: cover every variant or add _" ename;
      (fx, TSmatch (ts, tarms, !wild) :: acc)

let fn_signature ~self_struct (fd : Ast.fndef) =
  let self_tys =
    match (fd.Ast.self_param, self_struct) with
    | Ast.No_self, _ -> []
    | (Ast.Self_ref | Ast.Self_ref_mut), Some s -> [ Ast.Tref (Ast.Tstruct s) ]
    | (Ast.Self_ref | Ast.Self_ref_mut), None ->
        raise (Type_error "self parameter outside an impl block")
  in
  { sig_params = self_tys @ List.map snd fd.Ast.params; sig_ret = fd.Ast.ret }

let check (prog : Ast.program) =
  try
    (* pass 1: collect declarations *)
    let env =
      List.fold_left
        (fun env item ->
          match item with
          | Ast.Iconst (name, v) -> { env with consts = StrMap.add name v env.consts }
          | Ast.Istruct (name, fields) ->
              { env with structs = StrMap.add name fields env.structs }
          | Ast.Ienum (name, variants) ->
              { env with enums = StrMap.add name variants env.enums }
          | Ast.Iextern { ex_name; ex_params; ex_ret } ->
              {
                env with
                sigs =
                  StrMap.add ex_name
                    { sig_params = List.map snd ex_params; sig_ret = ex_ret }
                    env.sigs;
              }
          | Ast.Ifn fd ->
              {
                env with
                sigs = StrMap.add fd.Ast.fn_name (fn_signature ~self_struct:None fd) env.sigs;
              }
          | Ast.Iimpl (sname, fds) ->
              List.fold_left
                (fun env fd ->
                  {
                    env with
                    sigs =
                      StrMap.add
                        (Ast.method_symbol sname fd.Ast.fn_name)
                        (fn_signature ~self_struct:(Some sname) fd)
                        env.sigs;
                  })
                env fds)
        { consts = StrMap.empty; structs = StrMap.empty; enums = StrMap.empty; sigs = StrMap.empty }
        prog
    in
    (* pass 2: check bodies *)
    let check_fn ~self_struct symbol (fd : Ast.fndef) =
      let self_params =
        match (fd.Ast.self_param, self_struct) with
        | Ast.No_self, _ -> []
        | _, Some s -> [ ("self", Ast.Tref (Ast.Tstruct s)) ]
        | _, None -> raise (Type_error "self parameter outside an impl block")
      in
      let tparams = self_params @ fd.Ast.params in
      let locals =
        List.fold_left
          (fun m (n, ty) -> StrMap.add n (ty, true) m)
          StrMap.empty tparams
      in
      let fx = { env; locals; ret = fd.Ast.ret; loop_depth = 0 } in
      { symbol; tparams; tret = fd.Ast.ret; tbody = check_stmts fx fd.Ast.body }
    in
    let functions =
      List.concat_map
        (fun item ->
          match item with
          | Ast.Ifn fd -> [ check_fn ~self_struct:None fd.Ast.fn_name fd ]
          | Ast.Iimpl (sname, fds) ->
              List.map
                (fun fd ->
                  check_fn ~self_struct:(Some sname)
                    (Ast.method_symbol sname fd.Ast.fn_name)
                    fd)
                fds
          | Ast.Iconst _ | Ast.Istruct _ | Ast.Ienum _ | Ast.Iextern _ -> [])
        prog
    in
    (* duplicate detection *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun f ->
        if Hashtbl.mem seen f.symbol then
          raise (Type_error (Printf.sprintf "duplicate function %s" f.symbol))
        else Hashtbl.add seen f.symbol ())
      functions;
    Ok
      {
        structs =
          List.filter_map
            (function Ast.Istruct (n, fs) -> Some (n, fs) | _ -> None)
            prog;
        externs =
          List.filter_map
            (function
              | Ast.Iextern { ex_name; ex_params; ex_ret } ->
                  Some (ex_name, { sig_params = List.map snd ex_params; sig_ret = ex_ret })
              | _ -> None)
            prog;
        functions;
      }
  with Type_error msg -> Error msg

let is_place = is_place

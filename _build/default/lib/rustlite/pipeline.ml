type output = {
  program : Mir.Syntax.program;
  externs : string list;
  function_names : string list;
  mir_lines : int;
  source_lines : int;
}

let ( let* ) = Result.bind

let count_lines src =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 1 src

let compile ?lift_temps ?overflow_checks src =
  let* ast = Parser.parse src in
  let* typed = Typecheck.check ast in
  let program, externs = Lower.lower_program ?lift_temps ?overflow_checks typed in
  match Mir.Validate.check_program ~primitives:externs program with
  | [] ->
      Ok
        {
          program;
          externs;
          function_names = List.map (fun (f : Typecheck.tfn) -> f.Typecheck.symbol) typed.Typecheck.functions;
          mir_lines = Mir.Syntax.program_line_count program;
          source_lines = count_lines src;
        }
  | issues ->
      Error
        (Format.asprintf "internal error: generated MIR is ill-formed:@.%a"
           (Format.pp_print_list Mir.Validate.pp_issue)
           issues)

let compile_exn src =
  match compile src with Ok o -> o | Error msg -> invalid_arg msg

let emit o = Mir.Pp.program_to_string o.program

(* mirlightgen: print the MIRlight form of a Rustlite program (the
   counterpart of the paper's modified rustc, Sec. 3.3).

   With a file argument: compile and print that program.
   With --memory-module: print the built-in HyperEnclave memory module
   for the chosen geometry. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run file memory_module geometry stats_only =
  let source =
    match (file, memory_module) with
    | Some path, false -> Ok (read_file path)
    | None, true ->
        let geom =
          match geometry with
          | "tiny" -> Hyperenclave.Geometry.tiny
          | _ -> Hyperenclave.Geometry.x86_64
        in
        Ok (Hyperenclave.Mem_source.source (Hyperenclave.Layout.default geom))
    | Some _, true -> Error "pass either a file or --memory-module, not both"
    | None, false -> Error "pass a Rustlite file or --memory-module"
  in
  match source with
  | Error msg ->
      prerr_endline ("mirlightgen: " ^ msg);
      1
  | Ok src -> (
      match Rustlite.Pipeline.compile src with
      | Error msg ->
          prerr_endline ("mirlightgen: " ^ msg);
          1
      | Ok out ->
          if stats_only then
            Printf.printf "functions: %d\nsource lines: %d\nmirlight lines: %d\nexterns: %s\n"
              (List.length out.Rustlite.Pipeline.function_names)
              out.Rustlite.Pipeline.source_lines out.Rustlite.Pipeline.mir_lines
              (String.concat ", " out.Rustlite.Pipeline.externs)
          else print_string (Rustlite.Pipeline.emit out);
          0)

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Rustlite source file.")

let memory_module =
  Arg.(value & flag & info [ "memory-module" ] ~doc:"Compile the built-in HyperEnclave memory module.")

let geometry =
  Arg.(value & opt string "tiny" & info [ "geometry" ] ~docv:"GEOM" ~doc:"tiny or x86_64.")

let stats_only = Arg.(value & flag & info [ "stats" ] ~doc:"Print statistics instead of MIR.")

let cmd =
  Cmd.v
    (Cmd.info "mirlightgen" ~doc:"Rustlite to MIRlight translator")
    Term.(const run $ file $ memory_module $ geometry $ stats_only)

let () = exit (Cmd.eval' cmd)

(* Verifying the same code on a custom page-table geometry.

   Everything in this artifact — the Rustlite memory module, its
   specifications, the layer stack — is parameterized by the
   page-table geometry.  This example defines a 3-level shape that is
   neither the tiny one nor x86-64, regenerates the memory module for
   it, and re-runs a slice of the verification: the same code, checked
   against the same specifications, on different hardware constants.

   Run with: dune exec examples/custom_geometry.exe *)

open Hyperenclave

let () =
  (* 3 levels x 8 entries x 64-byte pages: a 15-bit virtual space *)
  let geom =
    match
      Geometry.make ~levels:3 ~index_bits:3 ~fb_present:0 ~fb_write:1 ~fb_user:2
        ~fb_huge:4
    with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  let layout =
    match
      Layout.make ~geom ~normal_pages:16 ~mbuf_page_index:12 ~mbuf_pages:2
        ~monitor_pages:2 ~frame_count:40 ~epc_pages:12
    with
    | Ok l -> l
    | Error msg -> failwith msg
  in
  Format.printf "=== Custom geometry ===@.%a@.@." Layout.pp layout;

  (* the memory module is regenerated with this layout's constants *)
  let out = Layers.compiled layout in
  Format.printf "memory module recompiled: %d functions, %d MIR lines@.@."
    (List.length out.Rustlite.Pipeline.function_names)
    out.Rustlite.Pipeline.mir_lines;

  (* boot and drive an enclave on the new shape *)
  let d = Boot.booted layout in
  let page i = Int64.mul (Int64.of_int (Geometry.page_size geom)) (Int64.of_int i) in
  let o = Hypercall.create d ~elrange_base:0L ~elrange_pages:3 ~mbuf_va:(page 20) in
  assert (Hypercall.status_equal o.Hypercall.status Hypercall.Success);
  let d = o.Hypercall.d and eid = o.Hypercall.value in
  let d =
    List.fold_left
      (fun d i ->
        let a = Hypercall.add_page d ~eid ~va:(page i) in
        assert (Hypercall.status_equal a.Hypercall.status Hypercall.Success);
        a.Hypercall.d)
      d [ 0; 1; 2 ]
  in
  Format.printf "enclave %d holds 3 EPC pages behind a 3-level GPT/EPT pair@." eid;

  (* the Sec. 5.2 invariants hold here too *)
  (match Security.Invariants.check d with
  | Ok () -> Format.printf "all Sec. 5.2 invariants hold on the custom shape@."
  | Error msg -> Format.printf "INVARIANT VIOLATION: %s@." msg);

  (* and the per-function code proofs run unchanged *)
  Format.printf "@.=== Code proofs on the custom geometry ===@.";
  let results = Check.Code_proof.run_all layout in
  let total, passed, skipped, failed = Check.Code_proof.total_cases results in
  Format.printf "%d functions, %d cases: %d passed, %d skipped, %d failed@."
    (List.length results) total passed skipped failed;
  List.iter
    (fun (layer, r) ->
      if not (Mirverif.Report.ok r) then
        Format.printf "FAIL [%s] %s@." layer (Mirverif.Report.to_string r))
    results;
  if failed = 0 then
    Format.printf "the same verified code base covers a geometry it has never seen@."
  else exit 1

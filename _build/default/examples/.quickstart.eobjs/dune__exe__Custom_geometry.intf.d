examples/custom_geometry.mli:

examples/quickstart.mli:

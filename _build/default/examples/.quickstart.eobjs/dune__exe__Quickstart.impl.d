examples/quickstart.ml: Int64 List Mir Mirverif Rustlite

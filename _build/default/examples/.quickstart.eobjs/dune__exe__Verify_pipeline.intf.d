examples/verify_pipeline.mli:

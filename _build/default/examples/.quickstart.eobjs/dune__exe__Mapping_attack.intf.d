examples/mapping_attack.mli:

examples/enclave_lifecycle.ml: Absdata Flags Format Geometry Hyperenclave Int64 Invariants Layout List Mir Nested Observation Oracle Principal Printf Result Security State Transition

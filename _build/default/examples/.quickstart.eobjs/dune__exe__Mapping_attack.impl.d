examples/mapping_attack.ml: Absdata Attacks Enclave Format Geometry Hypercall Hyperenclave Int64 Invariants Layout List Observation Principal Pt_refine Result Security State Transition

examples/custom_geometry.ml: Boot Check Format Geometry Hypercall Hyperenclave Int64 Layers Layout List Mirverif Rustlite Security

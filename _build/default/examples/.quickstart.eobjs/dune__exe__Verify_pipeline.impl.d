examples/verify_pipeline.ml: Check Format Geometry Hyperenclave Layers Layout List Mem_source Mem_spec Mir Mirverif Rustlite String

(* Quickstart: verify a small Rust(lite) function with MIRVerif.

   The full flow on a toy example:
     1. write idiomatic Rust-subset code,
     2. compile it to MIRlight (what mirlightgen does, paper Sec. 3.3),
     3. write a functional specification,
     4. check that the code running under the MIR semantics conforms
        to the specification on a battery of inputs (Sec. 4.3).

   Run with: dune exec examples/quickstart.exe *)

let rust_source =
  {|
    // Greatest common divisor, Euclid-style, in the Rust subset.
    fn gcd(a0: u64, b0: u64) -> u64 {
        let mut a = a0;
        let mut b = b0;
        while b != 0 {
            let t = b;
            b = a % b;
            a = t;
        }
        a
    }
  |}

(* The functional specification: a pure OCaml model. *)
let rec gcd_model a b = if Int64.equal b 0L then a else gcd_model b (Int64.unsigned_rem a b)

let spec =
  Mirverif.Spec.pure "gcd" (fun args ->
      match args with
      | [ Mir.Value.Int (a, _); Mir.Value.Int (b, _) ] ->
          Ok (Mir.Value.u64 (gcd_model a b))
      | _ -> Error "gcd expects two integers")

let () =
  (* 1-2. compile *)
  let out =
    match Rustlite.Pipeline.compile rust_source with
    | Ok out -> out
    | Error msg -> failwith msg
  in
  print_endline "=== MIRlight code generated from the Rust source ===";
  print_string (Rustlite.Pipeline.emit out);

  (* 3-4. conformance check on a grid of inputs *)
  let cases =
    List.concat_map
      (fun a ->
        List.map
          (fun b -> Mirverif.Refine.case () [ Mir.Value.u64 a; Mir.Value.u64 b ])
          [ 0L; 1L; 6L; 35L; 36L; 1071L; 462L; 0xFFFF_FFFF_FFFF_FFFFL ])
      [ 0L; 1L; 12L; 18L; 1071L; 462L; 97L ]
  in
  let check =
    Mirverif.Refine.check ~fn:"gcd" ~spec
      ~eq:(Mirverif.Refine.equiv (fun () () -> true))
      cases
  in
  let env = Mir.Interp.env ~prims:[] out.Rustlite.Pipeline.program in
  let report = Mirverif.Refine.run env check in
  print_endline "\n=== Conformance check: code vs specification ===";
  print_endline (Mirverif.Report.to_string report);
  if Mirverif.Report.ok report then
    print_endline "gcd: the MIR code refines its functional specification."
  else exit 1

(* Mapping attacks and how verification catches them (Fig. 5, Sec. 4.1).

   Each scenario builds the monitor state a buggy or malicious code
   path would produce, then shows the Sec. 5.2 invariants rejecting it;
   for the cross-enclave alias we additionally drive the transition
   system to exhibit the concrete noninterference violation (one
   enclave corrupting another's private page).

   Run with: dune exec examples/mapping_attack.exe *)

open Hyperenclave
open Security

let layout = Layout.default Geometry.tiny
let page i = Int64.mul (Int64.of_int (Geometry.page_size Geometry.tiny)) (Int64.of_int i)

let () =
  Format.printf "=== Invariant checking vs wrong page-table designs ===@.@.";
  List.iter
    (fun s ->
      Format.printf "%-22s %s@." s.Attacks.name s.Attacks.description;
      match s.Attacks.build () with
      | Error msg -> Format.printf "   (could not build: %s)@.@." msg
      | Ok d -> (
          match (Invariants.check d, s.Attacks.expected_violation) with
          | Ok (), None -> Format.printf "   -> all invariants hold (healthy baseline)@.@."
          | Ok (), Some _ -> Format.printf "   -> NOT DETECTED (bug in the checker!)@.@."
          | Error msg, _ -> Format.printf "   -> rejected: %s@.@." msg))
    Attacks.all;

  (* --- the alias attack, exploited end to end --- *)
  Format.printf "=== Exploiting the alias: a concrete interference ===@.";
  let d = Result.get_ok (Attacks.cross_enclave_alias.Attacks.build ()) in
  (* seal the attacker so it can run *)
  let d = (Hypercall.init_done d ~eid:2).Hypercall.d in
  let st = { (State.boot layout) with State.mon = d } in

  let victim = Principal.Enclave 1 in
  let view_before = Result.get_ok (Observation.observe st victim) in

  (* enclave 2 writes through its aliased mapping *)
  let run what st a =
    match Transition.step st a with
    | Ok st' -> st'
    | Error msg -> failwith (what ^ ": " ^ msg)
  in
  let st = run "enter" st (Transition.Hc_enter { eid = 2 }) in
  let st = run "arm" st (Transition.Const { dst = 0; value = 0xA77AC4L }) in
  let st = run "write" st (Transition.Store { src = 0; va = page 1 }) in

  let view_after = Result.get_ok (Observation.observe st victim) in
  Format.printf "victim's view changed after the attacker's store: %b@."
    (not (Observation.view_equal view_before view_after));
  Format.printf
    "(Lemma 5.2 integrity is violated — exactly what the noninterference@.";
  Format.printf " proof rules out for states satisfying the invariants.)@.@.";

  (* --- and why the shallow-copy state is 'unprovable' (Sec. 4.1) --- *)
  Format.printf "=== Shallow copy: no tree view exists ===@.";
  let d = Result.get_ok (Attacks.shallow_copy.Attacks.build ()) in
  let e1 = Result.get_ok (Absdata.find_enclave d 1) in
  (match Pt_refine.abstract d ~root:e1.Enclave.gpt_root with
  | Ok _ -> Format.printf "BUG: abstraction function accepted a malformed table@."
  | Error msg ->
      Format.printf "abstraction function fails: %s@." msg;
      Format.printf
        "(the refinement relation R cannot be established, so the copied@.";
      Format.printf " page table is unverifiable — the paper's Sec. 4.1 point.)@.")

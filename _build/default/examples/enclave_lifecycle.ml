(* Enclave lifecycle walkthrough (the Fig. 1 / Fig. 2 scenario).

   Boots HyperEnclave, runs two enclaves next to the primary OS, and
   prints what each principal can reach: the per-domain view of address
   translation (Fig. 2) and the domain x physical-region access matrix
   implied by Fig. 1.  Also demonstrates the marshalling buffer as the
   only communication channel, with its oracle semantics.

   Run with: dune exec examples/enclave_lifecycle.exe *)

open Hyperenclave
open Security

let layout = Layout.default Geometry.tiny
let page i = Int64.mul (Int64.of_int (Geometry.page_size Geometry.tiny)) (Int64.of_int i)

let step what st a =
  match Transition.step st a with
  | Ok st' -> st'
  | Error msg -> failwith (Printf.sprintf "%s: %s" what msg)

let () =
  Format.printf "=== Physical memory layout ===@.%a@.@." Layout.pp layout;

  (* --- lifecycle: ECREATE / EADD / EINIT for two enclaves --- *)
  let st = State.boot layout in
  let create st =
    let st =
      step "create" st
        (Transition.Hc_create
           { elrange_base = 0L; elrange_pages = 2; mbuf_va = page 8 })
    in
    (st, Int64.to_int (Result.get_ok (State.reg st 1)))
  in
  let st, e1 = create st in
  let st = step "add" st (Transition.Hc_add_page { eid = e1; va = 0L }) in
  let st = step "add" st (Transition.Hc_add_page { eid = e1; va = page 1 }) in
  let st = step "seal" st (Transition.Hc_init_done { eid = e1 }) in
  let st, e2 = create st in
  let st = step "add" st (Transition.Hc_add_page { eid = e2; va = 0L }) in
  let st = step "seal" st (Transition.Hc_init_done { eid = e2 }) in
  Format.printf "created enclaves %d and %d (sealed)@.@." e1 e2;

  (* --- Fig. 2: per-principal translation view --- *)
  let show_principal p =
    Format.printf "--- %s address space ---@." (Principal.to_string p);
    let reach =
      match p with
      | Principal.Os -> Result.get_ok (Nested.os_reachable st.State.mon)
      | Principal.Enclave eid ->
          let e = Result.get_ok (Absdata.find_enclave st.State.mon eid) in
          Result.get_ok (Nested.enclave_reachable st.State.mon e)
    in
    List.iter
      (fun (va, hpa, flags) ->
        Format.printf "  %s %a -> hpa %a  %a (%a)@."
          (match p with Principal.Os -> "gpa" | _ -> "gva")
          Mir.Word.pp va Mir.Word.pp hpa Flags.pp flags Layout.pp_region
          (Layout.region_of layout hpa))
      reach;
    Format.printf "@."
  in
  List.iter show_principal [ Principal.Os; Principal.Enclave e1; Principal.Enclave e2 ];

  (* --- Fig. 1: domain x region access matrix --- *)
  let regions = [ Layout.Normal; Layout.Mbuf; Layout.Monitor; Layout.Frame_area; Layout.Epc ] in
  let reaches p region =
    let reach =
      match p with
      | Principal.Os -> Result.get_ok (Nested.os_reachable st.State.mon)
      | Principal.Enclave eid ->
          let e = Result.get_ok (Absdata.find_enclave st.State.mon eid) in
          Result.get_ok (Nested.enclave_reachable st.State.mon e)
    in
    List.exists
      (fun (_, hpa, _) -> Layout.region_equal (Layout.region_of layout hpa) region)
      reach
  in
  Format.printf "=== Access matrix (rows: principals, columns: regions) ===@.";
  Format.printf "%-12s" "";
  List.iter (fun r -> Format.printf "%-12s" (Format.asprintf "%a" Layout.pp_region r)) regions;
  Format.printf "@.";
  List.iter
    (fun p ->
      Format.printf "%-12s" (Principal.to_string p);
      List.iter
        (fun r -> Format.printf "%-12s" (if reaches p r then "yes" else "-"))
        regions;
      Format.printf "@.")
    [ Principal.Os; Principal.Enclave e1; Principal.Enclave e2 ];
  Format.printf "@.";

  (* --- spatial isolation in action --- *)
  Format.printf "=== Spatial isolation ===@.";
  (match Invariants.check st.State.mon with
  | Ok () -> Format.printf "all Sec. 5.2 invariants hold@."
  | Error msg -> Format.printf "INVARIANT VIOLATION: %s@." msg);

  (* enclave 1 computes on private data *)
  let st = step "enter e1" st (Transition.Hc_enter { eid = e1 }) in
  let st = step "const" st (Transition.Const { dst = 0; value = 0x5EC2E7L }) in
  let st = step "store" st (Transition.Store { src = 0; va = 0L }) in
  Format.printf "enclave %d stored a secret in its EPC page@." e1;

  (* the OS cannot see it: same observation before and after *)
  let st' = step "exit" st Transition.Hc_exit in
  (match Observation.observe st' Principal.Os with
  | Ok v ->
      Format.printf "primary OS observes %d mappings, %d private pages — no EPC contents@."
        (List.length v.Observation.mappings)
        (List.length v.Observation.pages)
  | Error msg -> Format.printf "observe failed: %s@." msg);

  (* the OS cannot even address the EPC *)
  (match Transition.step st' (Transition.Load { dst = 0; va = layout.Layout.epc_base }) with
  | Error msg -> Format.printf "OS load from EPC page faults: %s@." msg
  | Ok _ -> Format.printf "BUG: OS read enclave memory!@.");

  (* --- marshalling buffer: the intended channel --- *)
  Format.printf "@.=== Marshalling buffer (declassified channel) ===@.";
  let st = step "re-enter" st' (Transition.Hc_enter { eid = e1 }) in
  let st = step "mbuf store" st (Transition.Store { src = 0; va = page 8 }) in
  let st = step "mbuf load" st (Transition.Load { dst = 1; va = page 8 }) in
  Format.printf
    "enclave wrote then read the buffer; the read came from its data oracle@.";
  Format.printf "oracle position for enclave-%d is now %d (reads are declassified)@."
    e1
    (Oracle.position (State.oracle_of st (Principal.Enclave e1)));
  Format.printf "@.lifecycle complete; final state remains invariant-clean: %b@."
    (Result.is_ok (Invariants.check st.State.mon))

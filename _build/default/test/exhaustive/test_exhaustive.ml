(* Bounded-exhaustive checking on the tiny geometry.

   The tiny shape (2 levels x 4 entries x 32-byte pages, 16 virtual
   pages, 42 physical pages) is small enough to enumerate whole input
   spaces instead of sampling them: these suites run every combination
   and compare the Rustlite code (under the MIR interpreter), its low
   spec, and — where applicable — the Pt_flat and Pt_tree views, all
   four of which must agree. *)

open Hyperenclave
module Report = Mirverif.Report

let layout = Layout.default Geometry.tiny
let g = Geometry.tiny
let pageL = Int64.of_int (Geometry.page_size g)
let page i = Int64.mul pageL (Int64.of_int i)
let vpages = 1 lsl (Geometry.va_bits g - g.Geometry.page_shift)
let ppages = Int64.to_int (Int64.div (Layout.phys_limit layout) pageL)

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let env_for layer = Layers.env_for layout ~layer

let run_code ?mem env d fn args =
  Mir.Interp.call env ~abs:d ~mem:(Option.value ~default:Mir.Mem.empty mem) fn args

let spec_of fn = Option.get (Mem_spec.find layout fn)

(* Compare code and spec on one input; both-undefined counts as agree. *)
let agree ?mem env d fn args =
  let spec_args = args in
  match
    ( Mirverif.Spec.apply (spec_of fn) d spec_args,
      run_code ?mem env d fn args )
  with
  | Error _, Error _ -> true
  | Ok (abs_s, ret_s), Ok outcome ->
      Mir.Value.equal outcome.Mir.Interp.ret ret_s
      && Absdata.equal outcome.Mir.Interp.abs abs_s
  | Ok _, Error _ | Error _, Ok _ -> false

(* ------------------------------------------------------------------ *)
(* 1. Every pure PTE operation over every flag combination and every
      physical page of the space (16 flags x 42 pages = 672 entries,
      through 6 functions each).                                       *)

let test_exhaustive_pte_ops () =
  let env = env_for "PteOps" in
  let d = Absdata.create layout in
  let entries =
    List.concat_map
      (fun p ->
        List.map (fun f -> Pte.make g ~pa:(page p) f) Flags.all)
      (List.init ppages (fun i -> i))
  in
  let fns = [ "pte_is_present"; "pte_is_huge"; "pte_is_writable"; "pte_is_user"; "pte_addr"; "pte_flag_bits" ] in
  List.iter
    (fun fn ->
      List.iter
        (fun e ->
          if not (agree env d fn [ Mir.Value.u64 e ]) then
            Alcotest.failf "%s disagrees on entry %Lx" fn e)
        entries)
    fns;
  (* pte_make over every page x flag combination *)
  List.iteri
    (fun p () ->
      List.iter
        (fun f ->
          let args = [ Mir.Value.u64 (page p); Mir.Value.u64 (Flags.encode g f) ] in
          if not (agree env d "pte_make" args) then
            Alcotest.failf "pte_make disagrees on page %d" p)
        Flags.all)
    (List.init ppages (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* 2. The frame allocator over its full bitmap state space: the tiny
      pool has 24 frames; enumerate all 2^12 states of the low half
      (the half boot actually uses) and check alloc/free/is_allocated
      against the code for each.                                       *)

let test_exhaustive_frame_alloc () =
  let env = env_for "FrameAlloc" in
  for bits = 0 to (1 lsl 12) - 1 do
    let falloc =
      ok "bitmap"
        (Frame_alloc.set_bitmap_word
           (Frame_alloc.create ~nframes:layout.Layout.frame_count)
           0 (Int64.of_int bits))
    in
    let d = { (Absdata.create layout) with Absdata.falloc } in
    if not (agree env d "frame_alloc" []) then
      Alcotest.failf "frame_alloc disagrees on bitmap %x" bits;
    (* spot the first-free answer against a direct computation *)
    (match run_code env d "frame_alloc" [] with
    | Ok o ->
        let expected =
          let rec go i = if i >= 12 then 12 else if bits land (1 lsl i) = 0 then i else go (i + 1) in
          go 0
        in
        let got =
          match o.Mir.Interp.ret with
          | Mir.Value.Int (w, _) -> Int64.to_int w
          | _ -> -1
        in
        Alcotest.(check int) (Printf.sprintf "lowest free of %x" bits) expected got
    | Error e -> Alcotest.failf "frame_alloc run: %s" (Mir.Interp.error_to_string e));
    (* free / is_allocated on every frame of the enumerated half *)
    for i = 0 to 11 do
      if not (agree env d "frame_free" [ Mir.Value.int Mir.Ty.U64 i ]) then
        Alcotest.failf "frame_free disagrees on bitmap %x frame %d" bits i;
      if not (agree env d "frame_is_allocated" [ Mir.Value.int Mir.Ty.U64 i ]) then
        Alcotest.failf "frame_is_allocated disagrees on bitmap %x frame %d" bits i
    done
  done

(* ------------------------------------------------------------------ *)
(* 3. map_page over the entire (va page, pa page, flags/8) input cube
      on a fresh table, checked code-vs-spec, and for accepted inputs
      also against Pt_flat and the tree abstraction.                   *)

let test_exhaustive_map_page () =
  let env = env_for "PtMap" in
  let d0, root = ok "create" (Pt_flat.create_table (Boot.booted layout)) in
  let flags_sample =
    [ Flags.user_rw; Flags.user_r; Flags.present_rw; Flags.none;
      Flags.with_huge Flags.user_rw; Flags.present_r ]
  in
  for vp = 0 to vpages - 1 do
    for pp = 0 to ppages - 1 do
      List.iter
        (fun f ->
          let fl = Flags.encode g f in
          let args =
            [
              Mir.Value.int Mir.Ty.U64 root;
              Mir.Value.u64 (page vp);
              Mir.Value.u64 (page pp);
              Mir.Value.u64 fl;
            ]
          in
          if not (agree env d0 "map_page" args) then
            Alcotest.failf "map_page disagrees on va=%d pa=%d flags=%s" vp pp
              (Flags.to_string f);
          (* cross-check the intermediate and high views on success *)
          match Mirverif.Spec.apply (spec_of "map_page") d0 args with
          | Ok (d', ret) when Mir.Value.equal ret (Mir.Value.u64 0L) ->
              (match Pt_flat.map_page d0 ~root ~va:(page vp) ~pa:(page pp) f with
              | Ok d_flat ->
                  if not (Absdata.equal d' d_flat) then
                    Alcotest.failf "low spec and Pt_flat diverge on va=%d pa=%d" vp pp;
                  let tree = ok "abstract" (Pt_refine.abstract d' ~root) in
                  ok "wf" (Pt_tree.wf tree);
                  if not (Pt_refine.relate d' ~root tree) then
                    Alcotest.failf "R broken after map va=%d pa=%d" vp pp
              | Error e ->
                  Alcotest.failf "Pt_flat rejects what the low spec accepts (va=%d pa=%d): %s"
                    vp pp e)
          | _ -> ())
        flags_sample
    done
  done

(* ------------------------------------------------------------------ *)
(* 4. walk/query over every (mapped va, queried va) pair: map one page
      then ask about every address; all four layers must agree.        *)

let test_exhaustive_single_mapping_queries () =
  let env = env_for "PtQuery" in
  for mapped = 0 to vpages - 1 do
    let d0, root = ok "create" (Pt_flat.create_table (Boot.booted layout)) in
    let d =
      ok "map" (Pt_flat.map_page d0 ~root ~va:(page mapped) ~pa:(page 1) Flags.user_r)
    in
    let tree = ok "abstract" (Pt_refine.abstract d ~root) in
    for queried = 0 to vpages - 1 do
      let args = [ Mir.Value.int Mir.Ty.U64 root; Mir.Value.u64 (page queried) ] in
      if not (agree env d "query" args) then
        Alcotest.failf "query disagrees (mapped %d, queried %d)" mapped queried;
      let flat_q = ok "flat" (Pt_flat.query d ~root ~va:(page queried)) in
      let tree_q = ok "tree" (Pt_tree.query tree ~va:(page queried)) in
      (match (flat_q, tree_q) with
      | None, None -> ()
      | Some (pa1, f1), Some (pa2, f2)
        when Mir.Word.equal pa1 pa2 && Flags.equal f1 f2 ->
          ()
      | _ -> Alcotest.failf "flat/tree diverge (mapped %d, queried %d)" mapped queried);
      let expected = if queried = mapped then Some (page 1) else None in
      (match (flat_q, expected) with
      | Some (pa, _), Some epa when Mir.Word.equal pa epa -> ()
      | None, None -> ()
      | _ -> Alcotest.failf "wrong answer (mapped %d, queried %d)" mapped queried)
    done
  done

(* ------------------------------------------------------------------ *)
(* 5. The enclave invariants against a first-principles oracle: for
      every (va page, backing region) forge one extra mapping into a
      healthy two-enclave state and compare the checker's verdict with
      a direct characterization of Sec. 5.2.                           *)

let test_exhaustive_invariant_verdicts () =
  let base = ok "build" (Security.Attacks.healthy.Security.Attacks.build ()) in
  let e1 = ok "find" (Absdata.find_enclave base 1) in
  let backings =
    [
      ("epc-own", Layout.epc_page_addr layout 0, true);
      (* e1's own page: an alias within one enclave -> epcm va mismatch *)
      ("epc-other", Layout.epc_page_addr layout 1, true);
      ("epc-free", Layout.epc_page_addr layout 2, true);
      ("normal", page 2, false);
      ("mbuf", layout.Layout.mbuf_base, false);
      ("frame-area", Layout.frame_addr layout 0, false);
      ("monitor", layout.Layout.monitor_base, false);
    ]
  in
  for vp = 0 to vpages - 1 do
    List.iter
      (fun (what, hpa, _is_epc) ->
        let va = page vp in
        (* skip combinations the forge itself cannot build *)
        match
          Result.bind (Pt_flat.map_page base ~root:e1.Enclave.gpt_root ~va ~pa:va Flags.user_rw)
            (fun d -> Pt_flat.map_page d ~root:e1.Enclave.ept_root ~va ~pa:hpa Flags.user_rw)
        with
        | Error _ -> () (* e.g. va already mapped: not a new scenario *)
        | Ok d ->
            let verdict = Security.Invariants.check d in
            (* first-principles: adding mapping va->hpa to e1 is legal
               only in these cases, none of which a forged mapping
               satisfies (add_page would also set the EPCM) *)
            let in_elrange = Enclave.in_elrange e1 g va in
            let in_mbuf_window = Enclave.in_mbuf_va e1 g va in
            let legal =
              (* the only forged mapping the invariants cannot reject:
                 pointing the enclave's own mbuf window at the mbuf *)
              in_mbuf_window
              && Layout.region_equal (Layout.region_of layout hpa) Layout.Mbuf
            in
            (match (verdict, legal) with
            | Ok (), true -> ()
            | Error _, false -> ()
            | Ok (), false ->
                Alcotest.failf "invariants MISSED forged mapping va=%d -> %s" vp what
            | Error msg, true ->
                Alcotest.failf "invariants over-rejected va=%d -> %s: %s" vp what msg);
            ignore in_elrange)
      backings
  done

(* ------------------------------------------------------------------ *)
(* 6. The Enclave::add_page code over every (enclave state, va page):
      exhaustive method-call conformance.                              *)

let test_exhaustive_add_page () =
  let env = env_for "EnclaveMem" in
  let d = ok "build" (Security.Attacks.healthy.Security.Attacks.build ()) in
  List.iter
    (fun eid ->
      let e = ok "find" (Absdata.find_enclave d eid) in
      List.iter
        (fun state ->
          let e = { e with Enclave.state } in
          let self_value = Mem_spec.enclave_to_value e in
          for vp = 0 to vpages - 1 do
            (* also probe one unaligned address per page *)
            List.iter
              (fun va ->
                let mem =
                  Mir.Mem.define (Mir.Path.Global "self") self_value Mir.Mem.empty
                in
                let args = [ Mir.Value.ptr_path (Mir.Path.global "self"); Mir.Value.u64 va ] in
                match
                  ( Mirverif.Spec.apply (spec_of "Enclave::add_page") d
                      [ self_value; Mir.Value.u64 va ],
                    run_code ~mem env d "Enclave::add_page" args )
                with
                | Error _, Error _ -> ()
                | Ok (abs_s, ret_s), Ok outcome ->
                    if
                      not
                        (Mir.Value.equal outcome.Mir.Interp.ret ret_s
                        && Absdata.equal outcome.Mir.Interp.abs abs_s)
                    then
                      Alcotest.failf "add_page disagrees (eid=%d va=%Lx)" eid va
                | _ -> Alcotest.failf "add_page verdicts diverge (eid=%d va=%Lx)" eid va)
              [ page vp; Int64.add (page vp) 8L ]
          done)
        [ Enclave.Created; Enclave.Initialized ])
    (Absdata.enclave_ids d)

let () =
  Alcotest.run "exhaustive"
    [
      ( "tiny-geometry",
        [
          Alcotest.test_case "pte ops: all flags x all pages" `Quick test_exhaustive_pte_ops;
          Alcotest.test_case "frame allocator: 4096 bitmap states" `Slow
            test_exhaustive_frame_alloc;
          Alcotest.test_case "map_page: full input cube" `Slow test_exhaustive_map_page;
          Alcotest.test_case "single-mapping queries: all pairs" `Quick
            test_exhaustive_single_mapping_queries;
          Alcotest.test_case "invariant verdicts vs oracle" `Slow
            test_exhaustive_invariant_verdicts;
          Alcotest.test_case "add_page: all states x all pages" `Slow
            test_exhaustive_add_page;
        ] );
    ]

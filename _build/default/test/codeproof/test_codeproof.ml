(* Tests of the verification harness itself: the 49-function
   conformance run, the low/high refinement for page tables, and
   mutation tests proving the checks can actually fail. *)

open Hyperenclave
module Report = Mirverif.Report

let layout = Layout.default Geometry.tiny

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* The compiled module and the layer stack                             *)

let test_compiles_49_functions () =
  let out = Layers.compiled layout in
  (* 49 paper-scope functions (Sec. 6) + the EREMOVE extension *)
  Alcotest.(check int) "49 + 1 verified functions" 50
    (List.length out.Rustlite.Pipeline.function_names);
  Alcotest.(check int) "15 layers" 15 Layers.layer_count

let test_stratified () =
  Alcotest.(check int) "no upcalls" 0 (List.length (Layers.stratification_ok layout))

let test_every_function_has_a_spec () =
  let out = Layers.compiled layout in
  List.iter
    (fun fn ->
      match Mem_spec.find layout fn with
      | Some _ -> ()
      | None -> Alcotest.failf "function %s has no specification" fn)
    out.Rustlite.Pipeline.function_names

let test_every_function_in_a_layer () =
  let out = Layers.compiled layout in
  List.iter
    (fun fn ->
      match Layers.layer_of_function layout fn with
      | Some _ -> ()
      | None -> Alcotest.failf "function %s not assigned to a layer" fn)
    out.Rustlite.Pipeline.function_names

(* ------------------------------------------------------------------ *)
(* Full conformance run                                                *)

let test_code_conformance () =
  let results = Check.Code_proof.run_all layout in
  Alcotest.(check int) "one report per function" 50 (List.length results);
  List.iter
    (fun (layer, r) ->
      if not (Report.ok r) then
        Alcotest.failf "[%s] %s" layer (Report.to_string r);
      if r.Report.passed = 0 then
        Alcotest.failf "[%s] %s: no case passed (vacuous)" layer r.Report.name)
    results

let test_code_conformance_x86 () =
  (* the same code and specs on the real geometry; a cheaper seed/state
     budget since boot maps 8192 pages *)
  let x86 = Layout.default Geometry.x86_64 in
  let results = Check.Code_proof.run_layer x86 "PtMap" in
  List.iter
    (fun r -> if not (Report.ok r) then Alcotest.failf "%s" (Report.to_string r))
    results;
  let results2 = Check.Code_proof.run_layer x86 "PteOps" in
  List.iter
    (fun r -> if not (Report.ok r) then Alcotest.failf "%s" (Report.to_string r))
    results2

(* ------------------------------------------------------------------ *)
(* Mutation tests: injected bugs must be caught                        *)

(* Compile a mutated source and re-check one function against the
   unchanged specification. *)
let check_mutant ~fn ~from ~into =
  let src = Mem_source.source layout in
  if not (contains src from) then
    Alcotest.failf "mutation anchor not found: %s" from;
  let rec replace s =
    let n = String.length s and m = String.length from in
    let rec find i = if i + m > n then None else if String.sub s i m = from then Some i else find (i + 1) in
    match find 0 with
    | None -> s
    | Some i ->
        replace (String.sub s 0 i ^ into ^ String.sub s (i + m) (n - i - m))
  in
  let mutated = replace src in
  match Rustlite.Pipeline.compile mutated with
  | Error msg -> Alcotest.failf "mutant failed to compile: %s" msg
  | Ok out ->
      let layer =
        match Layers.layer_of_function layout fn with
        | Some l -> l
        | None -> Alcotest.failf "no layer for %s" fn
      in
      (* lower layers keep their (correct) specs; only [fn]'s body is
         the mutant *)
      let prims =
        Mirverif.Layer.interface_below (Layers.stack layout) ~layer
        |> List.map Mirverif.Spec.to_prim
      in
      let env = Mir.Interp.env ~prims out.Rustlite.Pipeline.program in
      let checks = Check.Code_proof.checks layout in
      let _, check =
        List.find (fun (_, (c : Absdata.t Mirverif.Refine.check)) -> String.equal c.Mirverif.Refine.fn fn) checks
      in
      Mirverif.Refine.run env check

let test_mutant_missing_present_check () =
  (* map_page forgets to reject double mapping *)
  let r =
    check_mutant ~fn:"map_page"
      ~from:"if pte_is_present(old) { return ERR_INVALID; }"
      ~into:""
  in
  Alcotest.(check bool) "mutant caught" false (Report.ok r)

let test_mutant_wrong_flag_mask () =
  (* pte_make leaks address bits into the flag field *)
  let r =
    check_mutant ~fn:"pte_make"
      ~from:"fn pte_make(pa: u64, flags: u64) -> u64 { (pa & ADDR_MASK) | (flags & FLAGS_MASK) }"
      ~into:"fn pte_make(pa: u64, flags: u64) -> u64 { pa | (flags & FLAGS_MASK) }"
  in
  Alcotest.(check bool) "mutant caught" false (Report.ok r)

let test_mutant_allocator_skips_zero () =
  (* frame_alloc starts scanning at 1: no longer lowest-free *)
  let r =
    check_mutant ~fn:"frame_alloc"
      ~from:"fn frame_alloc() -> u64 {\n    let mut i = 0;"
      ~into:"fn frame_alloc() -> u64 {\n    let mut i = 1;"
  in
  Alcotest.(check bool) "mutant caught" false (Report.ok r)

let test_mutant_add_page_skips_elrange () =
  (* the Fig. 5 case-2 bug written into the code: add_page forgets the
     ELRANGE check *)
  let r =
    check_mutant ~fn:"Enclave::add_page"
      ~from:"if !self.in_elrange(va) { return ERR_INVALID; }"
      ~into:""
  in
  Alcotest.(check bool) "mutant caught" false (Report.ok r)

let test_mutant_remove_skips_epcm_clear () =
  (* remove_page unmaps but forgets to free the EPCM entry: the page
     leaks forever *)
  let r =
    check_mutant ~fn:"Enclave::remove_page"
      ~from:"        epc_page_zero(page);
        epcm_clear(page);
        OK
    }
}"
      ~into:"        epc_page_zero(page);
        OK
    }
}"
  in
  Alcotest.(check bool) "mutant caught" false (Report.ok r)

let test_mutant_shallow_copy_walk () =
  (* walk stops validating that next tables stay in the frame area —
     exactly what made the Sec. 4.1 shallow-copy bug dangerous *)
  let r =
    check_mutant ~fn:"walk"
      ~from:
        "        let next = entry_target_frame(e);\n\
        \        if next == NFRAMES {\n\
        \            return WalkRes { status: MALFORMED, level: level, frame: frame, index: index, entry: e };\n\
        \        }\n\
        \        frame = next;"
      ~into:"        frame = (pte_addr(e) - FRAME_BASE) >> PAGE_SHIFT;"
  in
  Alcotest.(check bool) "mutant caught" false (Report.ok r)

(* ------------------------------------------------------------------ *)
(* Low spec refines the Pt_flat intermediate spec                      *)

let booted () = Boot.booted layout

let fresh_root d = ok "create" (Pt_flat.create_table d)

let test_low_matches_pt_flat_map () =
  (* On inputs where Pt_flat.map_page succeeds, the low spec of the
     code must succeed with the same state; where Pt_flat rejects for a
     caller-visible reason, the low spec must report a failure status
     and (on argument errors) leave the state unchanged. *)
  let d, root = fresh_root (booted ()) in
  let page = Int64.of_int (Geometry.page_size Geometry.tiny) in
  let spec = Option.get (Mem_spec.find layout "map_page") in
  let run_low d va pa flags =
    match
      Mirverif.Spec.apply spec d
        [ Marshal_v.of_int root; Marshal_v.u64 va; Marshal_v.u64 pa; Marshal_v.u64 flags ]
    with
    | Ok (d', ret) -> (d', ret)
    | Error msg -> Alcotest.failf "low spec undefined: %s" msg
  in
  let cases =
    [
      (0L, layout.Layout.epc_base, Flags.encode Geometry.tiny Flags.user_rw);
      (Int64.mul page 3L, 0L, Flags.encode Geometry.tiny Flags.user_r);
      (8L, 0L, Flags.encode Geometry.tiny Flags.user_rw) (* unaligned va *);
      (0L, 0L, 0L) (* non-present flags *);
    ]
  in
  List.iter
    (fun (va, pa, flags) ->
      let d', low_ret = run_low d va pa flags in
      match Pt_flat.map_page d ~root ~va ~pa (Flags.decode Geometry.tiny flags) with
      | Ok d_flat ->
          Alcotest.(check bool) "low spec agrees on success" true
            (Mir.Value.equal low_ret (Marshal_v.u64 0L));
          Alcotest.(check bool) "states agree" true (Absdata.equal d' d_flat)
      | Error _ ->
          Alcotest.(check bool) "low spec reports failure" false
            (Mir.Value.equal low_ret (Marshal_v.u64 0L));
          Alcotest.(check bool) "state unchanged on arg error" true
            (Absdata.equal d' d))
    cases

let test_low_matches_pt_flat_query () =
  let d, root = fresh_root (booted ()) in
  let page = Int64.of_int (Geometry.page_size Geometry.tiny) in
  let d =
    ok "map" (Pt_flat.map_page d ~root ~va:(Int64.mul page 5L) ~pa:layout.Layout.epc_base Flags.user_rw)
  in
  let spec = Option.get (Mem_spec.find layout "query") in
  let vas = List.init 16 (fun i -> Int64.mul page (Int64.of_int i)) in
  List.iter
    (fun va ->
      match
        ( Mirverif.Spec.apply spec d [ Marshal_v.of_int root; Marshal_v.u64 va ],
          Pt_flat.query d ~root ~va )
      with
      | Ok (_, Mir.Value.Struct (0, [ present; pa; flags ])), Ok expectation -> (
          match expectation with
          | None ->
              Alcotest.(check bool) "absent" true
                (Mir.Value.equal present (Marshal_v.u64 0L))
          | Some (epa, eflags) ->
              Alcotest.(check bool) "present" true
                (Mir.Value.equal present (Marshal_v.u64 1L));
              Alcotest.(check bool) "pa agrees" true (Mir.Value.equal pa (Marshal_v.u64 epa));
              Alcotest.(check bool) "flags agree" true
                (Mir.Value.equal flags
                   (Marshal_v.u64 (Flags.encode Geometry.tiny eflags))))
      | Ok _, Ok _ -> Alcotest.fail "unexpected query result shape"
      | Error msg, _ -> Alcotest.failf "low query undefined: %s" msg
      | _, Error msg -> Alcotest.failf "Pt_flat.query: %s" msg)
    vas

(* The abstract hypercall model (what the security proofs run on) must
   agree with the verified code's low specs on every success path; on
   failures the model is transactional and only status codes are
   compared. *)
let test_model_agrees_with_low_spec_add_page () =
  let d = ok "build" (Security.Attacks.healthy.Security.Attacks.build ()) in
  let spec = Option.get (Mem_spec.find layout "Enclave::add_page") in
  let pageL = Int64.of_int (Geometry.page_size Geometry.tiny) in
  List.iter
    (fun eid ->
      let e = ok "find" (Absdata.find_enclave d eid) in
      for vp = 0 to 15 do
        let va = Int64.mul pageL (Int64.of_int vp) in
        let model = Hypercall.add_page d ~eid ~va in
        match
          Mirverif.Spec.apply spec d [ Mem_spec.enclave_to_value e; Marshal_v.u64 va ]
        with
        | Error msg -> Alcotest.failf "low spec undefined (va page %d): %s" vp msg
        | Ok (d_spec, ret) ->
            let spec_status = ret in
            let model_status = Marshal_v.u64 (Hypercall.status_code model.Hypercall.status) in
            if not (Mir.Value.equal spec_status model_status) then
              Alcotest.failf "status codes differ at va page %d (eid %d): spec %s model %s"
                vp eid (Mir.Value.to_string spec_status) (Mir.Value.to_string model_status);
            if Hypercall.status_equal model.Hypercall.status Hypercall.Success then begin
              if not (Phys_mem.equal d_spec.Absdata.phys model.Hypercall.d.Absdata.phys)
              then Alcotest.failf "phys differs after add (va page %d)" vp;
              if not (Frame_alloc.equal d_spec.Absdata.falloc model.Hypercall.d.Absdata.falloc)
              then Alcotest.failf "falloc differs after add (va page %d)" vp;
              if not (Epcm.equal d_spec.Absdata.epcm model.Hypercall.d.Absdata.epcm)
              then Alcotest.failf "epcm differs after add (va page %d)" vp
            end
      done)
    (Absdata.enclave_ids d)

let test_model_agrees_with_low_spec_remove_page () =
  let d = ok "build" (Security.Attacks.healthy.Security.Attacks.build ()) in
  let spec = Option.get (Mem_spec.find layout "Enclave::remove_page") in
  let pageL = Int64.of_int (Geometry.page_size Geometry.tiny) in
  List.iter
    (fun eid ->
      let e = ok "find" (Absdata.find_enclave d eid) in
      for vp = 0 to 15 do
        let va = Int64.mul pageL (Int64.of_int vp) in
        let model = Hypercall.remove_page d ~eid ~va in
        match
          Mirverif.Spec.apply spec d [ Mem_spec.enclave_to_value e; Marshal_v.u64 va ]
        with
        | Error msg -> Alcotest.failf "low spec undefined (va page %d): %s" vp msg
        | Ok (d_spec, ret) ->
            if
              not
                (Mir.Value.equal ret
                   (Marshal_v.u64 (Hypercall.status_code model.Hypercall.status)))
            then Alcotest.failf "remove status differs at va page %d (eid %d)" vp eid;
            if Hypercall.status_equal model.Hypercall.status Hypercall.Success then begin
              if not (Absdata.equal { d_spec with Absdata.enclaves = model.Hypercall.d.Absdata.enclaves; next_eid = model.Hypercall.d.Absdata.next_eid; os_ept_root = model.Hypercall.d.Absdata.os_ept_root } model.Hypercall.d)
              then Alcotest.failf "state differs after remove (va page %d)" vp
            end
      done)
    (Absdata.enclave_ids d)

let test_model_agrees_with_low_spec_hc_create () =
  let d = Boot.booted layout in
  let spec = Option.get (Mem_spec.find layout "hc_create") in
  let pageL = Int64.of_int (Geometry.page_size Geometry.tiny) in
  let cases =
    [ (0L, 2, 8); (0L, 1, 8); (8L, 2, 8); (0L, 9, 8); (0L, 2, 0); (Int64.mul pageL 4L, 4, 8) ]
  in
  List.iter
    (fun (elrange_base, elrange_pages, mbuf_page) ->
      let mbuf_va = Int64.mul pageL (Int64.of_int mbuf_page) in
      let model = Hypercall.create d ~elrange_base ~elrange_pages ~mbuf_va in
      match
        Mirverif.Spec.apply spec d
          [ Marshal_v.u64 elrange_base; Marshal_v.of_int elrange_pages; Marshal_v.u64 mbuf_va ]
      with
      | Error msg -> Alcotest.failf "hc_create spec undefined: %s" msg
      | Ok (d_spec, ret) -> (
          match ret with
          | Mir.Value.Struct (0, [ status; gpt; ept ]) ->
              if
                not
                  (Mir.Value.equal status
                     (Marshal_v.u64 (Hypercall.status_code model.Hypercall.status)))
              then Alcotest.fail "hc_create status differs";
              if Hypercall.status_equal model.Hypercall.status Hypercall.Success then begin
                let e = ok "find" (Absdata.find_enclave model.Hypercall.d model.Hypercall.value) in
                if not (Mir.Value.equal gpt (Marshal_v.of_int e.Enclave.gpt_root)) then
                  Alcotest.fail "gpt roots differ";
                if not (Mir.Value.equal ept (Marshal_v.of_int e.Enclave.ept_root)) then
                  Alcotest.fail "ept roots differ";
                if not (Phys_mem.equal d_spec.Absdata.phys model.Hypercall.d.Absdata.phys)
                then Alcotest.fail "phys differs after hc_create"
              end
          | _ -> Alcotest.fail "hc_create result shape"))
    cases

(* And Pt_flat itself refines Pt_tree (checked as a property in the
   hyperenclave suite); here: spot-check the three-level tower
   low-spec -> Pt_flat -> Pt_tree on one workload. *)
let test_three_level_tower () =
  let d, root = fresh_root (booted ()) in
  let page = Int64.of_int (Geometry.page_size Geometry.tiny) in
  let spec = Option.get (Mem_spec.find layout "map_page") in
  let apply d va pa =
    match
      Mirverif.Spec.apply spec d
        [ Marshal_v.of_int root; Marshal_v.u64 va; Marshal_v.u64 pa;
          Marshal_v.u64 (Flags.encode Geometry.tiny Flags.user_rw) ]
    with
    | Ok (d', _) -> d'
    | Error msg -> Alcotest.failf "map: %s" msg
  in
  let d = apply d 0L layout.Layout.epc_base in
  let d = apply d (Int64.mul page 7L) (Int64.add layout.Layout.epc_base page) in
  (* low-spec result state still abstracts to a well-formed tree *)
  let tree = ok "abstract" (Pt_refine.abstract d ~root) in
  ok "wf" (Pt_tree.wf tree);
  Alcotest.(check bool) "R holds" true (Pt_refine.relate d ~root tree);
  Alcotest.(check int) "two mappings" 2 (List.length (Pt_tree.mappings tree))

let () =
  Alcotest.run "codeproof"
    [
      ( "structure",
        [
          Alcotest.test_case "49 functions" `Quick test_compiles_49_functions;
          Alcotest.test_case "stratified" `Quick test_stratified;
          Alcotest.test_case "specs complete" `Quick test_every_function_has_a_spec;
          Alcotest.test_case "layers complete" `Quick test_every_function_in_a_layer;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "all 49 functions (tiny)" `Quick test_code_conformance;
          Alcotest.test_case "PtMap + PteOps (x86-64)" `Slow test_code_conformance_x86;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "missing present check" `Quick test_mutant_missing_present_check;
          Alcotest.test_case "wrong flag mask" `Quick test_mutant_wrong_flag_mask;
          Alcotest.test_case "allocator skips frame 0" `Quick test_mutant_allocator_skips_zero;
          Alcotest.test_case "add_page skips elrange" `Quick test_mutant_add_page_skips_elrange;
          Alcotest.test_case "walk drops frame-area check" `Quick test_mutant_shallow_copy_walk;
          Alcotest.test_case "remove skips epcm clear" `Quick test_mutant_remove_skips_epcm_clear;
        ] );
      ( "refinement-tower",
        [
          Alcotest.test_case "low spec vs Pt_flat map" `Quick test_low_matches_pt_flat_map;
          Alcotest.test_case "low spec vs Pt_flat query" `Quick test_low_matches_pt_flat_query;
          Alcotest.test_case "low -> flat -> tree" `Quick test_three_level_tower;
          Alcotest.test_case "model vs low spec: add_page" `Quick
            test_model_agrees_with_low_spec_add_page;
          Alcotest.test_case "model vs low spec: remove_page" `Quick
            test_model_agrees_with_low_spec_remove_page;
          Alcotest.test_case "model vs low spec: hc_create" `Quick
            test_model_agrees_with_low_spec_hc_create;
        ] );
    ]

(* Property tests for the Rustlite compiler: randomly generated
   programs compiled to MIR must compute exactly what a direct OCaml
   evaluation of the same expression computes (wrapping u64 semantics),
   and compilation must be deterministic. *)

module G = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* A generator of (expression source, direct evaluator) pairs over
   three u64 parameters a, b, c.                                       *)

type expr =
  | Lit of int64
  | Var of int  (* 0..2 *)
  | Bin of string * expr * expr
  | Not of expr
  | Cond of expr * expr * expr  (* compiled as if/else via a helper *)

let rec pp_expr = function
  | Lit i -> Printf.sprintf "%Lu" i
  | Var 0 -> "a"
  | Var 1 -> "b"
  | Var _ -> "c"
  | Bin (op, x, y) -> Printf.sprintf "(%s %s %s)" (pp_expr x) op (pp_expr y)
  | Not x -> Printf.sprintf "(!%s)" (pp_expr x)
  | Cond (c, t, e) ->
      (* lowered via the ite helper function *)
      Printf.sprintf "ite((%s) != 0, %s, %s)" (pp_expr c) (pp_expr t) (pp_expr e)

let rec eval env = function
  | Lit i -> i
  | Var i -> env.(i)
  | Bin (op, x, y) -> (
      let a = eval env x and b = eval env y in
      match op with
      | "+" -> Int64.add a b
      | "-" -> Int64.sub a b
      | "*" -> Int64.mul a b
      | "&" -> Int64.logand a b
      | "|" -> Int64.logor a b
      | "^" -> Int64.logxor a b
      | "<<" -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L) land 63)
      | ">>" -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L) land 63)
      | _ -> assert false)
  | Not x -> Int64.lognot (eval env x)
  | Cond (c, t, e) -> if not (Int64.equal (eval env c) 0L) then eval env t else eval env e

(* shifts must stay in range: generate shift amounts as (e & 63) *)
let gen_expr : expr G.t =
  G.sized
  @@ G.fix (fun self n ->
         let leaf =
           G.oneof
             [
               G.map (fun i -> Lit (Int64.of_int (abs i mod 1000))) G.int;
               G.map (fun i -> Lit i) G.ui64;
               G.map (fun i -> Var (abs i mod 3)) G.int;
             ]
         in
         if n <= 0 then leaf
         else
           G.frequency
             [
               (2, leaf);
               ( 4,
                 let op = G.oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
                 G.map3 (fun op x y -> Bin (op, x, y)) op (self (n / 2)) (self (n / 2)) );
               ( 1,
                 let op = G.oneofl [ "<<"; ">>" ] in
                 G.map3
                   (fun op x y -> Bin (op, x, Bin ("&", y, Lit 63L)))
                   op (self (n / 2)) (self (n / 2)) );
               (1, G.map (fun x -> Not x) (self (n - 1)));
               ( 1,
                 G.map3 (fun c t e -> Cond (c, t, e)) (self (n / 3)) (self (n / 3))
                   (self (n / 3)) );
             ])

let source_of e =
  Printf.sprintf
    {|
      fn ite(c: bool, t: u64, e: u64) -> u64 {
        if c { return t; }
        e
      }
      fn f(a: u64, b: u64, c: u64) -> u64 { %s }
    |}
    (pp_expr e)

let prop_compiled_expressions_match =
  QCheck2.Test.make ~count:150 ~name:"compiled expressions match direct evaluation"
    ~print:(fun (e, _) -> source_of e)
    (G.pair gen_expr (G.triple G.ui64 G.ui64 G.ui64))
    (fun (e, (a, b, c)) ->
      match Rustlite.Pipeline.compile (source_of e) with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed: %s" msg
      | Ok out -> (
          let env = Mir.Interp.env ~prims:[] out.Rustlite.Pipeline.program in
          match
            Mir.Interp.call env ~abs:() ~mem:Mir.Mem.empty "f"
              [ Mir.Value.u64 a; Mir.Value.u64 b; Mir.Value.u64 c ]
          with
          | Error err ->
              QCheck2.Test.fail_reportf "run failed: %s" (Mir.Interp.error_to_string err)
          | Ok o -> Mir.Value.equal o.Mir.Interp.ret (Mir.Value.u64 (eval [| a; b; c |] e))))

(* Note: Cond's ite helper evaluates both branches (call-by-value), but
   our expression language is total, so that is unobservable. *)

let prop_compile_deterministic =
  QCheck2.Test.make ~count:40 ~name:"compilation is deterministic" gen_expr (fun e ->
      let src = source_of e in
      match (Rustlite.Pipeline.compile src, Rustlite.Pipeline.compile src) with
      | Ok o1, Ok o2 ->
          String.equal (Rustlite.Pipeline.emit o1) (Rustlite.Pipeline.emit o2)
      | _ -> false)

(* Lowering ablation: the unlifted (all-vars-in-memory) compilation
   computes the same results. *)
let prop_unlifted_equivalent =
  QCheck2.Test.make ~count:60 ~name:"temp lifting does not change results"
    (G.pair gen_expr (G.triple G.ui64 G.ui64 G.ui64))
    (fun (e, (a, b, c)) ->
      let src = source_of e in
      match
        (Rustlite.Pipeline.compile src, Rustlite.Pipeline.compile ~lift_temps:false src)
      with
      | Ok o1, Ok o2 -> (
          let run out =
            let env = Mir.Interp.env ~prims:[] out.Rustlite.Pipeline.program in
            Mir.Interp.call env ~abs:() ~mem:Mir.Mem.empty "f"
              [ Mir.Value.u64 a; Mir.Value.u64 b; Mir.Value.u64 c ]
          in
          match (run o1, run o2) with
          | Ok r1, Ok r2 -> Mir.Value.equal r1.Mir.Interp.ret r2.Mir.Interp.ret
          | _ -> false)
      | _ -> false)

let () =
  Alcotest.run "rustlite-props"
    [
      ( "compiler-correctness",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compiled_expressions_match;
            prop_compile_deterministic;
            prop_unlifted_equivalent;
          ] );
    ]

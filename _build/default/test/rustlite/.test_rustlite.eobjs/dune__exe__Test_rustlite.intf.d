test/rustlite/test_rustlite.mli:

test/rustlite/test_props.ml: Alcotest Array Int64 List Mir Printf QCheck2 QCheck_alcotest Rustlite String

test/rustlite/test_props.mli:

test/rustlite/test_rustlite.ml: Alcotest Int64 List Mir Option QCheck2 QCheck_alcotest Rustlite String

(* End-to-end tests for the Rustlite -> MIRlight pipeline: compile a
   program, run it under the MIR interpreter, observe results. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let compile src =
  match Rustlite.Pipeline.compile src with
  | Ok o -> o
  | Error msg -> Alcotest.failf "compile failed: %s" msg

let compile_err src =
  match Rustlite.Pipeline.compile src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error msg -> msg

let run ?(prims = []) (o : Rustlite.Pipeline.output) fn args =
  let env = Mir.Interp.env ~prims o.Rustlite.Pipeline.program in
  Mir.Interp.call env ~abs:() ~mem:Mir.Mem.empty fn args

let run_u64 ?prims o fn args =
  match run ?prims o fn (List.map (Mir.Value.word Mir.Ty.U64) args) with
  | Ok out -> (
      match out.Mir.Interp.ret with
      | Mir.Value.Int (w, _) -> w
      | v -> Alcotest.failf "expected integer result, got %s" (Mir.Value.to_string v))
  | Error e -> Alcotest.failf "run failed: %s" (Mir.Interp.error_to_string e)

let check_u64 what expected actual = Alcotest.(check int64) what expected actual

(* ------------------------------------------------------------------ *)
(* Lexer / parser units                                                *)

let test_lexer () =
  match Rustlite.Lexer.tokenize "fn f(x: u64) -> u64 { x + 0x1_F } // c" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      Alcotest.(check int) "token count" 15 (List.length toks);
      (match (List.nth toks 12).Rustlite.Token.tok with
      | Rustlite.Token.Int v -> Alcotest.(check int64) "hex literal" 0x1FL v
      | _ -> Alcotest.fail "expected int literal")

let test_lexer_errors () =
  (match Rustlite.Lexer.tokenize "let x = @;" with
  | Error msg -> Alcotest.(check bool) "bad char" true (contains msg "unexpected")
  | Ok _ -> Alcotest.fail "expected lex error");
  match Rustlite.Lexer.tokenize "/* unterminated" with
  | Error msg -> Alcotest.(check bool) "unterminated" true (contains msg "comment")
  | Ok _ -> Alcotest.fail "expected lex error"

let test_parser_precedence () =
  match Rustlite.Parser.parse_expr "1 + 2 * 3 == 7 && true" with
  | Error e -> Alcotest.fail e
  | Ok e -> (
      match e.Rustlite.Ast.e with
      | Rustlite.Ast.Ebin (Rustlite.Ast.Land, _, _) -> ()
      | _ -> Alcotest.fail "&& should bind loosest")

let test_parse_errors () =
  let msg = compile_err "fn f( { }" in
  Alcotest.(check bool) "parse error reported" true (contains msg "parse error")

(* ------------------------------------------------------------------ *)
(* Whole-program behaviour                                             *)

let test_arith_and_consts () =
  let o =
    compile
      {|
        const BASE: u64 = 0x100;
        fn f(x: u64) -> u64 { (x + BASE) * 2 - 1 }
      |}
  in
  check_u64 "f(1)" 0x201L (run_u64 o "f" [ 1L ])

let test_if_else () =
  let o =
    compile
      {|
        fn max(a: u64, b: u64) -> u64 {
          if a > b { return a; } else { return b; }
        }
        fn classify(x: u64) -> u64 {
          if x == 0 { 0; return 10; }
          else if x < 10 { return 20; }
          else { return 30; }
        }
      |}
  in
  check_u64 "max" 9L (run_u64 o "max" [ 3L; 9L ]);
  check_u64 "classify 0" 10L (run_u64 o "classify" [ 0L ]);
  check_u64 "classify 5" 20L (run_u64 o "classify" [ 5L ]);
  check_u64 "classify 50" 30L (run_u64 o "classify" [ 50L ])

let test_while_loop () =
  let o =
    compile
      {|
        fn sum_to(n: u64) -> u64 {
          let mut acc = 0;
          let mut i = 1;
          while i <= n {
            acc = acc + i;
            i = i + 1;
          }
          return acc;
        }
      |}
  in
  check_u64 "sum 10" 55L (run_u64 o "sum_to" [ 10L ]);
  check_u64 "sum 0" 0L (run_u64 o "sum_to" [ 0L ])

let test_loop_break_continue () =
  let o =
    compile
      {|
        fn first_multiple(step: u64, above: u64) -> u64 {
          let mut x = 0;
          loop {
            x = x + step;
            if x <= above { continue; }
            break;
          }
          return x;
        }
      |}
  in
  check_u64 "first multiple" 12L (run_u64 o "first_multiple" [ 4L; 10L ])

let test_short_circuit () =
  let o =
    compile
      {|
        fn guard(x: u64) -> u64 {
          /* division only runs when x != 0: && must short-circuit */
          if x != 0 && 100 / x > 5 { return 1; }
          return 0;
        }
      |}
  in
  check_u64 "guard 0 (no div)" 0L (run_u64 o "guard" [ 0L ]);
  check_u64 "guard 10" 1L (run_u64 o "guard" [ 10L ]);
  check_u64 "guard 50" 0L (run_u64 o "guard" [ 50L ])

let test_div_assert () =
  let o = compile "fn div(a: u64, b: u64) -> u64 { a / b }" in
  check_u64 "div ok" 4L (run_u64 o "div" [ 12L; 3L ]);
  match run o "div" [ Mir.Value.u64 1L; Mir.Value.u64 0L ] with
  | Error (Mir.Interp.Assert_failed { msg; _ }) ->
      Alcotest.(check bool) "rustc-style message" true (contains msg "divide by zero")
  | Ok _ -> Alcotest.fail "division by zero must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Mir.Interp.error_to_string e)

let test_structs_and_methods () =
  let o =
    compile
      {|
        struct Counter { count: u64, step: u64 }
        impl Counter {
          fn bump(&mut self) -> u64 {
            self.count = self.count + self.step;
            return self.count;
          }
          fn get(&self) -> u64 { self.count }
        }
        fn drive() -> u64 {
          let mut c = Counter { count: 0, step: 5 };
          c.bump();
          c.bump();
          let via_method = c.get();
          return via_method + c.count;
        }
      |}
  in
  check_u64 "methods mutate through self" 20L (run_u64 o "drive" [])

let test_references () =
  let o =
    compile
      {|
        fn set_to(p: &mut u64, v: u64) { *p = v; }
        fn main_like() -> u64 {
          let mut x = 1;
          set_to(&mut x, 42);
          return x;
        }
      |}
  in
  check_u64 "write through &mut param" 42L (run_u64 o "main_like" [])

let test_nested_struct () =
  let o =
    compile
      {|
        struct Inner { v: u64 }
        struct Outer { a: Inner, b: Inner }
        fn swap_like() -> u64 {
          let mut o = Outer { a: Inner { v: 1 }, b: Inner { v: 2 } };
          o.a.v = o.b.v + 10;
          return o.a.v * 100 + o.b.v;
        }
      |}
  in
  check_u64 "nested field updates" 1202L (run_u64 o "swap_like" [])

let test_externs_as_prims () =
  let o =
    compile
      {|
        extern fn read_cell() -> u64;
        extern fn write_cell(v: u64);
        fn bump_by(n: u64) -> u64 {
          let v = read_cell();
          write_cell(v + n);
          return read_cell();
        }
      |}
  in
  Alcotest.(check (list string)) "externs listed" [ "read_cell"; "write_cell" ]
    (List.sort String.compare o.Rustlite.Pipeline.externs);
  let prims =
    [
      {
        Mir.Interp.prim_name = "read_cell";
        prim_exec = (fun abs _ -> Ok (abs, Mir.Value.word Mir.Ty.U64 (Int64.of_int abs)));
      };
      {
        Mir.Interp.prim_name = "write_cell";
        prim_exec =
          (fun _abs args ->
            match args with
            | [ Mir.Value.Int (w, _) ] -> Ok (Int64.to_int w, Mir.Value.Unit)
            | _ -> Error "bad args");
      };
    ]
  in
  let env = Mir.Interp.env ~prims o.Rustlite.Pipeline.program in
  match Mir.Interp.call env ~abs:5 ~mem:Mir.Mem.empty "bump_by" [ Mir.Value.u64 3L ] with
  | Ok out ->
      Alcotest.(check int) "abstract state" 8 out.Mir.Interp.abs;
      Alcotest.(check bool) "returned new value" true
        (Mir.Value.equal out.Mir.Interp.ret (Mir.Value.u64 8L))
  | Error e -> Alcotest.failf "run: %s" (Mir.Interp.error_to_string e)

let test_shadowing () =
  let o =
    compile
      {|
        fn f() -> u64 {
          let x = 1;
          let x = x + 10;
          let x = x * 2;
          return x;
        }
      |}
  in
  check_u64 "shadowed lets" 22L (run_u64 o "f" [])

let test_addr_taken_classification () =
  let o =
    compile
      {|
        fn f() -> u64 {
          let mut target = 0;   // address taken: must be a local
          let pure = 5;         // never referenced: stays a temp
          let p = &mut target;
          *p = pure;
          return target;
        }
      |}
  in
  (match Mir.Syntax.find_body o.Rustlite.Pipeline.program "f" with
  | None -> Alcotest.fail "body missing"
  | Some body ->
      Alcotest.(check (option bool)) "target is local" (Some true)
        (Option.map (fun k -> k = Mir.Syntax.Klocal) (Mir.Syntax.local_kind_of body "target"));
      Alcotest.(check (option bool)) "pure is temp" (Some true)
        (Option.map (fun k -> k = Mir.Syntax.Ktemp) (Mir.Syntax.local_kind_of body "pure")));
  check_u64 "behaviour" 5L (run_u64 o "f" [])

let test_casts_and_bools () =
  let o =
    compile
      {|
        fn f(a: u64, b: u64) -> u64 {
          let c = a < b;
          let d = !(a == b);
          (c as u64) * 10 + (d as u64)
        }
      |}
  in
  check_u64 "bools to ints" 11L (run_u64 o "f" [ 1L; 2L ]);
  check_u64 "equal case" 0L (run_u64 o "f" [ 2L; 2L ])

let test_type_errors () =
  let cases =
    [
      ("fn f() -> u64 { true }", "return");
      ("fn f() -> u64 { g() }", "unknown function");
      ("fn f() -> u64 { let x: bool = 1; 0 }", "initialized with");
      ("fn f() -> u64 { 1 + true }", "expects u64");
      ("fn f() -> u64 { let x = 1; x.foo }", "struct");
      ("struct S { a: u64 } fn f() -> u64 { let s = S { }; 0 }", "fields");
      ("fn f() -> u64 { break; 0 }", "loop");
      ("fn f() -> u64 { let y = &1; 0 }", "temporary");
    ]
  in
  List.iter
    (fun (src, expect) ->
      let msg = compile_err src in
      if not (contains msg expect) then
        Alcotest.failf "wrong error for %s: %s (expected ...%s...)" src msg expect)
    cases

let test_mutability_enforced () =
  let msg = compile_err "fn f() { let x = 1; x = 2; }" in
  Alcotest.(check bool) "immutable assignment rejected" true
    (contains msg "immutable")

let test_enums_and_match () =
  let o =
    compile
      {|
        enum Shape { Point, Line(u64), Rect(u64, u64) }

        fn area(kind: u64, a: u64, b: u64) -> u64 {
          let s = make(kind, a, b);
          let mut out = 0;
          match s {
            Shape::Point => { out = 0; }
            Shape::Line(len) => { out = len; }
            Shape::Rect(w, h) => { out = w * h; }
          }
          out
        }

        fn make(kind: u64, a: u64, b: u64) -> Shape {
          if kind == 0 { return Shape::Point; }
          if kind == 1 { return Shape::Line(a); }
          Shape::Rect(a, b)
        }

        fn wild(kind: u64) -> u64 {
          let s = make(kind, 3, 4);
          let mut out = 100;
          match s {
            Shape::Point => { out = 0; }
            _ => { out = 7; }
          }
          out
        }
      |}
  in
  check_u64 "point" 0L (run_u64 o "area" [ 0L; 9L; 9L ]);
  check_u64 "line" 9L (run_u64 o "area" [ 1L; 9L; 9L ]);
  check_u64 "rect" 12L (run_u64 o "area" [ 2L; 3L; 4L ]);
  check_u64 "wildcard hit" 0L (run_u64 o "wild" [ 0L ]);
  check_u64 "wildcard fallthrough" 7L (run_u64 o "wild" [ 2L ]);
  (* the generated MIR uses discriminant + switchInt, like rustc *)
  let mir = Rustlite.Pipeline.emit o in
  Alcotest.(check bool) "discriminant emitted" true (contains mir "discriminant");
  Alcotest.(check bool) "downcast emitted" true (contains mir "variant#")

let test_match_static_errors () =
  let cases =
    [
      (* non-exhaustive *)
      ( {| enum E { A, B } fn f(e: E) -> u64 { match e { E::A => { return 1; } } 0 } |},
        "non-exhaustive" );
      (* wrong arity *)
      ( {| enum E { A(u64) } fn f(e: E) -> u64 { match e { E::A => { return 1; } } 0 } |},
        "binds" );
      (* wrong enum in pattern *)
      ( {| enum E { A } enum F { B } fn f(e: E) -> u64 { match e { F::B => { return 1; } } 0 } |},
        "scrutinee" );
      (* duplicate arm *)
      ( {| enum E { A, B } fn f(e: E) -> u64 { match e { E::A => { return 1; } E::A => { return 2; } _ => { return 3; } } 0 } |},
        "duplicate" );
      (* match on non-enum *)
      ( {| fn f(x: u64) -> u64 { match x { _ => { return 1; } } 0 } |},
        "non-enum" );
      (* field access on enum *)
      ( {| enum E { A } fn f(e: E) -> u64 { e.x } |}, "enum" );
    ]
  in
  List.iter
    (fun (src, expect) ->
      let msg = compile_err src in
      if not (contains msg expect) then
        Alcotest.failf "wrong error: %s (expected ...%s...)" msg expect)
    cases

let test_overflow_checks_mode () =
  let src = "fn f(a: u64, b: u64) -> u64 { a + b }" in
  (* release mode wraps *)
  let o = compile src in
  check_u64 "wrapping add" 5L (run_u64 o "f" [ 0xFFFF_FFFF_FFFF_FFFFL; 6L ]);
  (* debug mode traps, rustc-style *)
  match Rustlite.Pipeline.compile ~overflow_checks:true src with
  | Error msg -> Alcotest.failf "debug compile failed: %s" msg
  | Ok o -> (
      check_u64 "in-range add still works" 9L (run_u64 o "f" [ 4L; 5L ]);
      match run o "f" [ Mir.Value.u64 0xFFFF_FFFF_FFFF_FFFFL; Mir.Value.u64 6L ] with
      | Error (Mir.Interp.Assert_failed { msg; _ }) ->
          Alcotest.(check bool) "overflow message" true (contains msg "overflow")
      | Ok _ -> Alcotest.fail "overflow must trap in debug mode"
      | Error e -> Alcotest.failf "wrong error: %s" (Mir.Interp.error_to_string e))

let test_emit_mir_format () =
  let o = compile "fn f(x: u64) -> u64 { x + 1 }" in
  let s = Rustlite.Pipeline.emit o in
  Alcotest.(check bool) "has fn header" true (contains s "fn f");
  Alcotest.(check bool) "has Add" true (contains s "Add");
  Alcotest.(check bool) "has return" true (contains s "return;")

(* Compiled functions that never take an address must leave object
   memory untouched (the temp-lifting guarantee of Sec. 3.2). *)
let test_pure_functions_no_memory () =
  let o =
    compile
      {|
        fn collatz_steps(n0: u64) -> u64 {
          let mut n = n0;
          let mut steps = 0;
          while n != 1 {
            if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; }
            steps = steps + 1;
          }
          return steps;
        }
      |}
  in
  let env = Mir.Interp.env ~prims:[] o.Rustlite.Pipeline.program in
  match Mir.Interp.call env ~abs:() ~mem:Mir.Mem.empty "collatz_steps" [ Mir.Value.u64 27L ] with
  | Ok out ->
      Alcotest.(check bool) "collatz(27) = 111 steps" true
        (Mir.Value.equal out.Mir.Interp.ret (Mir.Value.u64 111L));
      Alcotest.(check int) "no memory objects" 0 (Mir.Mem.cardinal out.Mir.Interp.mem)
  | Error e -> Alcotest.failf "run: %s" (Mir.Interp.error_to_string e)

let prop_sum_matches_formula =
  QCheck2.Test.make ~count:50 ~name:"compiled loop equals closed form"
    (QCheck2.Gen.int_bound 500)
    (fun n ->
      let o =
        compile
          {|
            fn sum_to(n: u64) -> u64 {
              let mut acc = 0;
              let mut i = 1;
              while i <= n { acc = acc + i; i = i + 1; }
              return acc;
            }
          |}
      in
      Int64.equal (run_u64 o "sum_to" [ Int64.of_int n ])
        (Int64.of_int (n * (n + 1) / 2)))

let () =
  Alcotest.run "rustlite"
    [
      ( "frontend",
        [
          Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "arith and consts" `Quick test_arith_and_consts;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "loop/break/continue" `Quick test_loop_break_continue;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "div assert" `Quick test_div_assert;
          Alcotest.test_case "structs and methods" `Quick test_structs_and_methods;
          Alcotest.test_case "references" `Quick test_references;
          Alcotest.test_case "nested structs" `Quick test_nested_struct;
          Alcotest.test_case "externs" `Quick test_externs_as_prims;
          Alcotest.test_case "shadowing" `Quick test_shadowing;
          Alcotest.test_case "casts and bools" `Quick test_casts_and_bools;
          Alcotest.test_case "pure functions leave memory alone" `Quick
            test_pure_functions_no_memory;
        ] );
      ( "static-analysis",
        [
          Alcotest.test_case "address-taken classification" `Quick
            test_addr_taken_classification;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "mutability" `Quick test_mutability_enforced;
          Alcotest.test_case "enums and match" `Quick test_enums_and_match;
          Alcotest.test_case "match static errors" `Quick test_match_static_errors;
          Alcotest.test_case "overflow checks mode" `Quick test_overflow_checks_mode;
          Alcotest.test_case "emit format" `Quick test_emit_mir_format;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_sum_matches_formula ]);
    ]

(* hyperenclave-verify: run the full verification pass.

   Phases, mirroring the paper's structure:
     1. mirlightgen  — compile the memory module to MIRlight
     2. layering     — assemble the 15-layer stack, check stratification
     3. analysis     — MIRlight dataflow lints (lib/analysis), selected
                       with --lints
     4. code-proofs  — per-function conformance (Sec. 4.3)
     5. refinement   — flat/tree page-table simulation (Sec. 4.1)
     6. invariants   — Sec. 5.2 invariants on reachable states
     7. noninterference — Lemmas 5.2-5.4 (Sec. 5.3)
     8. trace noninterference — Theorem 5.1
     9. attacks      — Fig. 5 scenarios must be rejected
    10. chaos        — opt-in (--chaos): fault-injected traces with
                       transactionality, invariant and TLB-consistency
                       checks, plus MIRlight-level primitive faults
    11. model check  — opt-in (--model-check DEPTH): exhaustive bounded
                       exploration of every event interleaving (lib/mc),
                       sharded by state-key prefix across the pool, with
                       partial-order reduction (--mc-por/--no-mc-por)

   Phases 3-9 and 11 are reified as an obligation DAG (lib/engine) and run on
   a Domain worker pool (--jobs), optionally against a
   content-addressed proof cache (--cache DIR).  Stdout carries only
   verification content — no job counts, timings or cache statistics —
   so the output is byte-identical at any job count and cache state;
   scheduling metadata goes to stderr, --json-out and --trace-out.
   Rendering and summary construction live in lib/serve, shared with
   the --serve daemon, so a daemon response is byte-identical to a
   one-shot run of the same request.

   Serving (lib/serve): --serve SOCKET runs the long-lived daemon — a
   dispatcher in front of --fleet N forked workers with resident plan
   memos, admission batching (--batch-window-ms) and a shared proof
   cache; --client SOCKET submits the flag-selected request to a
   running daemon and renders the response exactly like a local run. *)

open Cmdliner
module Report = Mirverif.Report

let phase_header name = Format.printf "@.=== %s ===@." name

(* Phase 10 (opt-in): chaos.  On the correct monitor the phase passes
   when [traces] fault-injected traces survive every per-step check; on
   the --buggy-tlb monitor it passes when the planted stale-TLB bug is
   found and shrunk to a minimal witness.  Stays sequential: its value
   is the shrinking loop, not throughput. *)
let run_chaos ~failures ~quick ~seed ~traces ~faults_spec ~buggy_tlb layout =
  let kinds =
    if String.trim faults_spec = "all" then Ok Fault.Plan.all_kinds
    else Fault.Plan.kinds_of_string faults_spec
  in
  match kinds with
  | Error msg ->
      incr failures;
      Format.printf "  bad --faults: %s@." msg
  | Ok [] ->
      incr failures;
      Format.printf "  bad --faults: empty kind list@."
  | Ok kinds ->
      let traces = if quick then min traces 1_000 else traces in
      let flush = not buggy_tlb in
      Format.printf "  monitor: %s@.  fault kinds: %s@."
        (if buggy_tlb then "buggy (unmap does not flush the TLB)" else "correct")
        (String.concat ", " (List.map Fault.Plan.kind_to_string kinds));
      let stats, cx = Fault.Chaos.run ~flush ~faults:kinds ~seed ~traces layout in
      Format.printf
        "  %d traces, %d events, %d faults applied (%d inapplicable), %d disabled actions@."
        stats.Fault.Chaos.traces stats.Fault.Chaos.events stats.Fault.Chaos.faults
        stats.Fault.Chaos.fault_skips stats.Fault.Chaos.disabled_steps;
      (match (cx, buggy_tlb) with
      | None, false ->
          Format.printf
            "  no violations: transactionality, invariants and TLB consistency hold@."
      | Some cx, false ->
          incr failures;
          Format.printf "  COUNTEREXAMPLE:@.%a@." Fault.Chaos.pp_counterexample cx
      | Some cx, true ->
          Format.printf "  found and shrunk the planted stale-TLB bug:@.%a@."
            Fault.Chaos.pp_counterexample cx;
          if not (String.equal cx.Fault.Chaos.cx_failure.Fault.Chaos.check "tlb-consistency")
          then begin
            incr failures;
            Format.printf "  UNEXPECTED: the failure is not a TLB-consistency violation@."
          end
      | None, true ->
          incr failures;
          Format.printf "  UNEXPECTED: the buggy monitor survived all %d traces@."
            stats.Fault.Chaos.traces);
      let mreport, outcomes = Fault.Mir_chaos.run ~seed layout in
      Format.printf "  %s@." (Report.to_string mreport);
      List.iter
        (fun o ->
          Format.printf "    %-16s %3d primitive calls, %3d perturbed executions@."
            o.Fault.Mir_chaos.target o.Fault.Mir_chaos.prim_calls
            o.Fault.Mir_chaos.injections)
        outcomes;
      if not (Report.ok mreport) then incr failures

(* ------------------------------------------------------------------ *)
(* Serve / client modes                                                *)

let run_serve ~socket ~fleet ~batch_window_ms ~cache_dir ~jobs ~retries
    ~timeout_ms =
  let cfg =
    {
      (Serve.Server.default_config ~socket) with
      Serve.Server.fleet = max 0 fleet;
      batch_window_ms = Float.max 0.0 batch_window_ms;
      cache_dir;
      jobs = max 1 jobs;
      retries = max 0 retries;
      timeout_ms;
    }
  in
  match Serve.Server.serve cfg with
  | () -> 0
  | exception Failure msg ->
      (* e.g. a daemon already listening on the requested socket *)
      Format.eprintf "hyperenclave-verify: %s@." msg;
      2

let run_client ~socket ~scrub_summary ~json_out (req : Serve.Driver.request) =
  let module Jsonx = Engine.Jsonx in
  match Serve.Client.request_json ~socket (Serve.Driver.json_of_request req) with
  | Error msg ->
      Format.eprintf "hyperenclave-verify: %s@." msg;
      2
  | Ok resp -> (
      match Jsonx.member "ok" resp with
      | Some (Jsonx.Bool true) ->
          Option.iter print_string
            (Option.bind (Jsonx.member "stdout" resp) Jsonx.to_string_opt);
          flush stdout;
          Option.iter
            (fun path ->
              match Jsonx.member "summary" resp with
              | Some summary ->
                  let summary =
                    if scrub_summary then Serve.Summary.scrub summary else summary
                  in
                  Jsonx.write_file path (Jsonx.to_multiline_string summary)
              | None -> ())
            json_out;
          Option.value ~default:1
            (Option.bind (Jsonx.member "status" resp) Jsonx.to_int_opt)
      | _ ->
          let err =
            Option.value ~default:"malformed response"
              (Option.bind (Jsonx.member "error" resp) Jsonx.to_string_opt)
          in
          Format.eprintf "hyperenclave-verify: daemon error: %s@." err;
          2)

(* ------------------------------------------------------------------ *)

let run geometry seed quick jobs cache_dir json_out trace_out lint_json chaos
    chaos_traces faults_spec buggy_tlb lints timeout_ms retries
    engine_chaos_seed engine_faults_spec mc_depth mc_geometry mc_por overrides
    serve_socket client_socket fleet batch_window_ms scrub_summary =
  match
    if engine_chaos_seed = None then Ok Fault.Plan.all_engine_kinds
    else Fault.Plan.engine_kinds_of_string engine_faults_spec
  with
  | Error msg ->
      Format.eprintf "hyperenclave-verify: bad --engine-faults: %s@." msg;
      2
  | Ok [] ->
      Format.eprintf "hyperenclave-verify: bad --engine-faults: empty kind list@.";
      2
  | Ok engine_kinds ->
  match serve_socket with
  | Some socket ->
      run_serve ~socket ~fleet ~batch_window_ms ~cache_dir ~jobs ~retries
        ~timeout_ms
  | None ->
  match client_socket with
  | Some socket ->
      if chaos || engine_chaos_seed <> None then begin
        Format.eprintf
          "hyperenclave-verify: --chaos / --engine-chaos are not served over \
           the wire (run them one-shot)@.";
        2
      end
      else
        let req =
          {
            Serve.Driver.geometry;
            seed;
            quick;
            lints;
            overrides;
            mc =
              Option.map
                (fun depth ->
                  {
                    Serve.Driver.mc_depth = max 1 depth;
                    mc_por;
                    mc_geometry;
                    mc_buggy_tlb = buggy_tlb;
                  })
                mc_depth;
            source_digest = None;
          }
        in
        run_client ~socket ~scrub_summary ~json_out req
  | None ->
  let geom =
    match geometry with
    | "x86_64" -> Hyperenclave.Geometry.x86_64
    | _ -> Hyperenclave.Geometry.tiny
  in
  let layout = Hyperenclave.Layout.default geom in
  let failures = ref 0 in
  let ppf = Format.std_formatter in

  (* phases 1-2 *)
  Serve.Render.prelude ppf ~failures layout;

  (* phases 3-8: build the obligation DAG and hand it to the pool *)
  let security = geometry <> "x86_64" in
  let model_check =
    Option.map
      (fun depth ->
        (* the checker's own small geometry: exhaustive exploration
           needs an enumerable state space regardless of the geometry
           the proof phases run on *)
        {
          Engine.Plan.mc_depth = max 1 depth;
          mc_por;
          mc_flush = not buggy_tlb;
          mc_layout = Serve.Driver.mc_layout_of_geometry mc_geometry;
        })
      mc_depth
  in
  let plan, plan_cache_hit, plan_build_s =
    Engine.Plan.build_memo ~quick ~security ~lints ?model_check ~overrides ~seed
      layout
  in
  let cache = Option.map (fun dir -> Engine.Cache.create ~dir) cache_dir in
  let jobs = max 1 jobs in
  let engine_chaos =
    Option.map
      (fun cseed -> Engine.Engine_chaos.create ~kinds:engine_kinds ~seed:cseed ())
      engine_chaos_seed
  in
  let sup =
    {
      Engine.Supervisor.default with
      timeout = (if timeout_ms <= 0 then None else Some (float_of_int timeout_ms /. 1000.));
      retries = max 0 retries;
      seed;
      chaos = engine_chaos;
    }
  in
  let run_pool () = Engine.Pool.run_with_stats ?cache ~sup ~jobs plan.Engine.Plan.dag in
  let execs, stats =
    (* chaos clock skew perturbs every engine timestamp and deadline
       read; verification content never reads the clock, so stdout is
       untouched *)
    match engine_chaos with
    | Some ch -> Engine.Clock.with_source (Engine.Engine_chaos.skewed_source ch) run_pool
    | None -> run_pool ()
  in
  Serve.Render.engine_results ppf ~failures ~security execs;

  if chaos then begin
    phase_header "10. chaos (fault injection, transactionality, shrinking)";
    if geometry = "x86_64" then
      Format.printf
        "  skipped: the chaos checks enumerate page contents; use --geometry tiny@."
    else
      run_chaos ~failures ~quick ~seed ~traces:chaos_traces ~faults_spec
        ~buggy_tlb layout
  end;

  Option.iter (fun req -> Serve.Render.model_check ppf ~failures req execs) model_check;

  Serve.Render.verdict ppf !failures;

  (* scheduling metadata: never on stdout, so runs diff clean *)
  let count_cache = Serve.Summary.count_cache in
  Format.eprintf "engine: %d obligations, jobs=%d, cache %s, %d hits, %d misses, %.3fs@."
    (List.length execs) jobs
    (if cache = None then "off" else "on")
    (count_cache execs Engine.Pool.Hit)
    (count_cache execs Engine.Pool.Miss)
    (Engine.Pool.wall_of execs);
  let sup_totals =
    Engine.Supervisor.totals (List.map (fun (e : Engine.Pool.exec) -> e.trail) execs)
  in
  let cache_write_failures =
    match cache with None -> 0 | Some c -> Engine.Cache.write_failure_count c
  in
  if
    sup_totals.Engine.Supervisor.supervised > 0
    || stats.Engine.Pool.respawns > 0 || stats.Engine.Pool.lost_workers > 0
  then
    Format.eprintf
      "engine supervision: %d supervised (%d retried, %d recovered, %d fell back, \
       %d quarantined), %d crashes, %d timeouts, %d respawns, %d workers lost@."
      sup_totals.Engine.Supervisor.supervised sup_totals.Engine.Supervisor.retried
      sup_totals.Engine.Supervisor.recovered sup_totals.Engine.Supervisor.fell_back
      sup_totals.Engine.Supervisor.quarantined sup_totals.Engine.Supervisor.crashes
      sup_totals.Engine.Supervisor.timeouts stats.Engine.Pool.respawns
      stats.Engine.Pool.lost_workers;
  if cache_write_failures > 0 then
    Format.eprintf "engine cache: %d write failure(s) — see --trace-out@."
      cache_write_failures;
  Option.iter
    (fun ch ->
      Format.eprintf "engine chaos: seed=%d, injected %d (%s)@."
        (Engine.Engine_chaos.seed ch)
        (Engine.Engine_chaos.injected_total ch)
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" (Fault.Plan.engine_kind_to_string k) n)
              (Engine.Engine_chaos.injected ch))))
    engine_chaos;
  Option.iter
    (fun path ->
      let summary =
        Serve.Summary.summary_json ~failures:!failures ~jobs
          ~cache_enabled:(cache <> None) ~sup_totals ~stats ~cache_write_failures
          ~engine_chaos ~model_check ~plan ~plan_build_s ~plan_cache_hit execs
      in
      let summary = if scrub_summary then Serve.Summary.scrub summary else summary in
      Engine.Jsonx.write_file path (Engine.Jsonx.to_multiline_string summary))
    json_out;
  Option.iter
    (fun path -> Engine.Jsonx.write_lines path (Serve.Summary.trace_json ~cache execs))
    trace_out;
  Option.iter
    (fun path ->
      Engine.Jsonx.write_file path
        (Engine.Jsonx.to_multiline_string
           (Serve.Summary.lint_json_of (Serve.Summary.lint_findings execs))))
    lint_json;
  if !failures = 0 then 0 else 1

let geometry =
  Arg.(
    value
    & opt (enum [ ("tiny", "tiny"); ("x86_64", "x86_64") ]) "tiny"
    & info [ "geometry" ] ~docv:"GEOM" ~doc:"Page-table geometry: $(b,tiny) or $(b,x86_64).")

let seed = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller state budgets.")

let jobs =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the obligation pool (default: the recommended \
           domain count).  Results are byte-identical at any N.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed proof cache directory.  Warm runs replay unchanged \
           obligations from the cache instead of re-executing them.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:"Write a machine-readable run summary (verdict, cache and worker stats).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a JSONL trace: one line per obligation with timing and cache status.")

let lint_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "lint-json" ] ~docv:"FILE"
        ~doc:
          "Write the reconciled lint findings (per-body dataflow plus \
           abstract-interpretation kinds) as a JSON list: kind, function, \
           program point, severity, discharged-by.")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:"Also run the fault-injection chaos phase (see lib/fault).")

let chaos_traces =
  Arg.(
    value & opt int 10_000
    & info [ "chaos-traces" ] ~docv:"N"
        ~doc:"Randomized traces the chaos phase replays (--quick caps at 1000).")

let faults =
  Arg.(
    value & opt string "all"
    & info [ "faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated fault kinds to inject: exhaustion, pt-bitflip, \
           bitmap-bitflip, epcm, oracle, tlb, truncation — or 'all'.")

let buggy_tlb =
  Arg.(
    value & flag
    & info [ "buggy-tlb" ]
        ~doc:
          "Chaos the deliberately buggy monitor that skips the TLB flush on \
           unmap; the phase then passes only if the stale-TLB bug is found \
           and shrunk to a minimal witness.")

let lints =
  (* parse-time validation, like --geometry's enum: an unknown lint
     name or group selector is a usage error before any phase runs,
     not a silently-empty selection *)
  let lints_conv =
    Arg.conv
      ( (fun s ->
          match Analysis.Lint.kinds_of_string s with
          | Ok ks -> Ok ks
          | Error msg -> Error (`Msg msg)),
        fun fmt ks ->
          Format.pp_print_string fmt
            (String.concat "," (List.map Analysis.Lint.to_string ks)) )
  in
  Arg.(
    value
    & opt lints_conv Analysis.Lint.catalogue
    & info [ "lints" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated static-analysis lints to run: layer-encapsulation, \
           move-init, unchecked-arith, unreachable-block, conflicting-borrow, \
           dangling-handle, move-while-borrowed, interval-bounds, secret-flow, \
           alias-footprint — or a group selector: $(b,all), $(b,body), \
           $(b,borrow), $(b,interprocedural), $(b,alias).")

let timeout_ms =
  Arg.(
    value & opt int 0
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-attempt obligation deadline in milliseconds (0 = none).  \
           Cooperative: check batteries poll at case/trial boundaries, so an \
           attempt is cancelled at the first boundary past the deadline.")

let retries =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Additional attempts for an obligation that crashes or times out, \
           with deterministic exponential backoff, before the degradation \
           ladder (reference-interpreter fallback for code proofs) and \
           quarantine.")

let engine_chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "engine-chaos" ] ~docv:"SEED"
        ~doc:
          "Inject deterministic faults into the verification engine itself \
           (obligation crashes/hangs, worker kills, cache corruption, clock \
           skew) from SEED.  Verdicts must be byte-identical to a clean run \
           — CI asserts this.")

let engine_faults =
  Arg.(
    value & opt string "all"
    & info [ "engine-faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated engine fault kinds for --engine-chaos: obl-crash, \
           obl-hang, worker-kill, torn-pack, truncated-proof, clock-skew — \
           or 'all'.")

let mc_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "model-check" ] ~docv:"DEPTH"
        ~doc:
          "Also run phase 11: exhaustively explore every interleaving of the \
           hypercall/access/fault universe up to DEPTH events from boot on \
           the --mc-geometry layout, deduplicating states by canonical key \
           and checking invariants, TLB consistency, transactionality and \
           step-indistinguishability at every reachable state.  With \
           --buggy-tlb the phase passes only when the stale-TLB bug is \
           rediscovered and ddmin-shrunk to its minimal witness.")

let mc_geometry =
  Arg.(
    value
    & opt (enum [ ("tiny", "tiny"); ("tiny3", "tiny3") ]) "tiny"
    & info [ "mc-geometry" ] ~docv:"GEOM"
        ~doc:
          "Geometry for the model-checking phase: $(b,tiny) (2 levels) or \
           $(b,tiny3) (3 levels) — independent of --geometry, since \
           exhaustive exploration needs an enumerable state space.")

let mc_por =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "mc-por" ]
              ~doc:
                "Enable sleep-set partial-order reduction in the \
                 model-checking phase (the default)." );
          ( false,
            info [ "no-mc-por" ]
              ~doc:
                "Disable partial-order reduction: explore every interleaving \
                 order.  The violation set and reachable states are identical \
                 either way — CI asserts it." );
        ])

let overrides =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "overrides" ]
              ~doc:
                "Compositional code proofs (the default): once a callee is \
                 proven, its callers execute the callee's specification as a \
                 compiled stub instead of its body; dependency edges follow \
                 the call graph and cache fingerprints cover only (own body + \
                 directly-used callee specs).  Verdicts are identical to \
                 --no-overrides — CI asserts it." );
          ( false,
            info [ "no-overrides" ]
              ~doc:
                "Monolithic code proofs: every same-layer callee runs its \
                 body, layer-barrier dependency edges, reachable-closure \
                 fingerprints — the pre-composition engine, byte-for-byte." );
        ])

let serve_socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"SOCKET"
        ~doc:
          "Run as a long-lived verification daemon on a Unix socket: a \
           dispatcher in front of --fleet forked worker processes with \
           resident plan memos, admission batching (--batch-window-ms) and a \
           shared --cache directory.  Submit requests with --client.")

let client_socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "client" ] ~docv:"SOCKET"
        ~doc:
          "Submit one verification request — built from the same flags a \
           local run would use — to a daemon started with --serve, print the \
           response exactly like a local run, and exit with its verdict.")

let fleet =
  Arg.(
    value & opt int 2
    & info [ "fleet" ] ~docv:"N"
        ~doc:
          "Worker processes for --serve (each with its own OCaml runtime and \
           resident memos; 0 = serve in-process).  Workers share the --cache \
           directory: a proof computed by one is a warm hit for all.")

let batch_window_ms =
  Arg.(
    value & opt float 2.0
    & info [ "batch-window-ms" ] ~docv:"MS"
        ~doc:
          "Admission-batching window for --serve: requests arriving within \
           MS of each other coalesce into one merged DAG submission (up to \
           32), giving the worker pool real parallelism across requests.")

let scrub_summary =
  Arg.(
    value & flag
    & info [ "scrub-summary" ]
        ~doc:
          "Write --json-out through the deterministic projection: drop every \
           scheduling-dependent field (job counts, cache statistics, wall \
           clocks, worker utilization), leaving only verification content — \
           byte-identical for the same request at any job count, fleet size, \
           cache state or batching window.  CI diffs daemon responses against \
           one-shot runs through this projection.")

let cmd =
  Cmd.v
    (Cmd.info "hyperenclave-verify"
       ~doc:"Run the full HyperEnclave memory-subsystem verification pass")
    Term.(
      const run $ geometry $ seed $ quick $ jobs $ cache_dir $ json_out $ trace_out
      $ lint_json $ chaos $ chaos_traces $ faults $ buggy_tlb $ lints $ timeout_ms
      $ retries $ engine_chaos_seed $ engine_faults $ mc_depth $ mc_geometry
      $ mc_por $ overrides $ serve_socket $ client_socket $ fleet
      $ batch_window_ms $ scrub_summary)

let () = exit (Cmd.eval' cmd)

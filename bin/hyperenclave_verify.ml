(* hyperenclave-verify: run the full verification pass.

   Phases, mirroring the paper's structure:
     1. mirlightgen  — compile the memory module to MIRlight
     2. layering     — assemble the 15-layer stack, check stratification
     3. code-proofs  — per-function conformance (Sec. 4.3)
     4. refinement   — flat/tree page-table simulation (Sec. 4.1)
     5. invariants   — Sec. 5.2 invariants on reachable states
     6. noninterference — Lemmas 5.2-5.4 (Sec. 5.3)
     7. trace noninterference — Theorem 5.1
     8. attacks      — Fig. 5 scenarios must be rejected
     9. chaos        — opt-in (--chaos): fault-injected traces with
                       transactionality, invariant and TLB-consistency
                       checks, plus MIRlight-level primitive faults *)

open Cmdliner
module Report = Mirverif.Report

let geom_of = function
  | "x86_64" -> Hyperenclave.Geometry.x86_64
  | _ -> Hyperenclave.Geometry.tiny

let phase_header name = Format.printf "@.=== %s ===@." name

let check_reports ~failures reports =
  List.iter
    (fun r ->
      Format.printf "  %s@." (Report.to_string r);
      if not (Report.ok r) then incr failures)
    reports

let run_refinement_sim layout seed =
  (* random op sequences applied to both views, R checked throughout *)
  let open Hyperenclave in
  let rng = ref (Check.Rng.make seed) in
  let page i = Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i) in
  let report = ref (Report.empty "flat/tree simulation (R)") in
  for trial = 1 to 50 do
    let d = Absdata.create layout in
    match Pt_flat.create_table d with
    | Error msg -> report := Report.add_failure !report ~case:"create" ~reason:msg
    | Ok (d, root) -> (
        match Pt_refine.abstract d ~root with
        | Error msg -> report := Report.add_failure !report ~case:"abstract" ~reason:msg
        | Ok tree ->
            let d = ref d and tree = ref tree in
            let okay = ref true in
            for _ = 1 to 20 do
              if !okay then begin
                let kind, r1 = Check.Rng.int_below !rng 3 in
                let v, r2 = Check.Rng.int_below r1 16 in
                let p, r3 = Check.Rng.int_below r2 8 in
                rng := r3;
                let va = page v and pa = page p in
                let fr =
                  match kind with
                  | 0 -> (
                      ( Pt_flat.map_page !d ~root ~va ~pa Flags.user_rw,
                        Pt_tree.map_page !tree ~va ~pa Flags.user_rw ))
                  | 1 -> (Pt_flat.unmap_page !d ~root ~va, Pt_tree.unmap_page !tree ~va)
                  | _ ->
                      ( Pt_flat.map_huge !d ~root ~va:(Int64.logand va (Int64.lognot (Int64.sub (page 4) 1L)))
                          ~pa:(Int64.logand pa (Int64.lognot (Int64.sub (page 4) 1L)))
                          ~level:2 Flags.user_r,
                        Pt_tree.map_huge !tree
                          ~va:(Int64.logand va (Int64.lognot (Int64.sub (page 4) 1L)))
                          ~pa:(Int64.logand pa (Int64.lognot (Int64.sub (page 4) 1L)))
                          ~level:2 Flags.user_r )
                in
                match fr with
                | Ok d', Ok tree' ->
                    d := d';
                    tree := tree';
                    if Pt_refine.relate !d ~root !tree then
                      report := Report.add_pass !report
                    else begin
                      okay := false;
                      report :=
                        Report.add_failure !report
                          ~case:(Printf.sprintf "trial %d" trial)
                          ~reason:"R broken after lock-step operation"
                    end
                | Error _, Error _ -> report := Report.add_skip !report
                | Ok _, Error e | Error e, Ok _ ->
                    okay := false;
                    report :=
                      Report.add_failure !report
                        ~case:(Printf.sprintf "trial %d" trial)
                        ~reason:("one view rejected what the other accepted: " ^ e)
              end
            done)
  done;
  !report

(* Phase 9 (opt-in): chaos.  On the correct monitor the phase passes
   when [traces] fault-injected traces survive every per-step check; on
   the --buggy-tlb monitor it passes when the planted stale-TLB bug is
   found and shrunk to a minimal witness. *)
let run_chaos ~failures ~quick ~seed ~traces ~faults_spec ~buggy_tlb layout =
  let kinds =
    if String.trim faults_spec = "all" then Ok Fault.Plan.all_kinds
    else Fault.Plan.kinds_of_string faults_spec
  in
  match kinds with
  | Error msg ->
      incr failures;
      Format.printf "  bad --faults: %s@." msg
  | Ok [] ->
      incr failures;
      Format.printf "  bad --faults: empty kind list@."
  | Ok kinds ->
      let traces = if quick then min traces 1_000 else traces in
      let flush = not buggy_tlb in
      Format.printf "  monitor: %s@.  fault kinds: %s@."
        (if buggy_tlb then "buggy (unmap does not flush the TLB)" else "correct")
        (String.concat ", " (List.map Fault.Plan.kind_to_string kinds));
      let stats, cx = Fault.Chaos.run ~flush ~faults:kinds ~seed ~traces layout in
      Format.printf
        "  %d traces, %d events, %d faults applied (%d inapplicable), %d disabled actions@."
        stats.Fault.Chaos.traces stats.Fault.Chaos.events stats.Fault.Chaos.faults
        stats.Fault.Chaos.fault_skips stats.Fault.Chaos.disabled_steps;
      (match (cx, buggy_tlb) with
      | None, false ->
          Format.printf
            "  no violations: transactionality, invariants and TLB consistency hold@."
      | Some cx, false ->
          incr failures;
          Format.printf "  COUNTEREXAMPLE:@.%a@." Fault.Chaos.pp_counterexample cx
      | Some cx, true ->
          Format.printf "  found and shrunk the planted stale-TLB bug:@.%a@."
            Fault.Chaos.pp_counterexample cx;
          if not (String.equal cx.Fault.Chaos.cx_failure.Fault.Chaos.check "tlb-consistency")
          then begin
            incr failures;
            Format.printf "  UNEXPECTED: the failure is not a TLB-consistency violation@."
          end
      | None, true ->
          incr failures;
          Format.printf "  UNEXPECTED: the buggy monitor survived all %d traces@."
            stats.Fault.Chaos.traces);
      let mreport, outcomes = Fault.Mir_chaos.run ~seed layout in
      Format.printf "  %s@." (Report.to_string mreport);
      List.iter
        (fun o ->
          Format.printf "    %-16s %3d primitive calls, %3d perturbed executions@."
            o.Fault.Mir_chaos.target o.Fault.Mir_chaos.prim_calls
            o.Fault.Mir_chaos.injections)
        outcomes;
      if not (Report.ok mreport) then incr failures

let run geometry seed quick chaos chaos_traces faults_spec buggy_tlb =
  let geom = geom_of geometry in
  let layout = Hyperenclave.Layout.default geom in
  let failures = ref 0 in

  phase_header "1. mirlightgen (Rustlite -> MIRlight)";
  let out = Hyperenclave.Layers.compiled layout in
  Format.printf "  functions: %d, source lines: %d, mirlight lines: %d@."
    (List.length out.Rustlite.Pipeline.function_names)
    out.Rustlite.Pipeline.source_lines out.Rustlite.Pipeline.mir_lines;

  phase_header "2. layer stack";
  let issues = Hyperenclave.Layers.stratification_ok layout in
  Format.printf "  %d layers, stratification issues: %d@."
    Hyperenclave.Layers.layer_count (List.length issues);
  List.iter (fun i -> Format.printf "  %a@." Mirverif.Layer.pp_stratification_issue i) issues;
  if issues <> [] then incr failures;

  phase_header "3. code proofs (code conforms to low specs)";
  let results = Check.Code_proof.run_all ~seed layout in
  let t, p, s, f = Check.Code_proof.total_cases results in
  Format.printf "  %d functions, %d cases: %d passed, %d skipped, %d failed@."
    (List.length results) t p s f;
  List.iter
    (fun (layer, r) ->
      if not (Report.ok r) then begin
        incr failures;
        Format.printf "  FAIL [%s] %s@." layer (Report.to_string r)
      end)
    results;

  phase_header "4. page-table refinement (flat <-> tree, Sec. 4.1)";
  let sim = run_refinement_sim layout seed in
  check_reports ~failures [ sim ];

  if geometry <> "x86_64" then begin
    (* the security phases enumerate page contents; tiny geometry only *)
    phase_header "5. invariants (Sec. 5.2) on reachable states";
    let states = Check.Gen.states ~n:(if quick then 8 else 25) ~seed ~steps:35 layout in
    let inv_report =
      List.fold_left
        (fun rep (label, st) ->
          match Security.Invariants.check st.Security.State.mon with
          | Ok () -> Report.add_pass rep
          | Error reason -> Report.add_failure rep ~case:label ~reason)
        (Report.empty "invariants on reachable states")
        states
    in
    let actions = Check.Gen.action_battery layout in
    let preservation =
      List.fold_left
        (fun rep (label, st) ->
          List.fold_left
            (fun rep a ->
              match Security.Transition.step st a with
              | Error _ -> Report.add_skip rep
              | Ok st' -> (
                  match Security.Invariants.check st'.Security.State.mon with
                  | Ok () -> Report.add_pass rep
                  | Error reason ->
                      Report.add_failure rep
                        ~case:(label ^ " / " ^ Security.Transition.action_to_string a)
                        ~reason))
            rep actions)
        (Report.empty "invariant preservation")
        states
    in
    check_reports ~failures [ inv_report; preservation ];

    phase_header "6. noninterference (Lemmas 5.2-5.4, Sec. 5.3)";
    let observers =
      [ Security.Principal.Os; Security.Principal.Enclave 1; Security.Principal.Enclave 2 ]
    in
    let n = if quick then 6 else 15 in
    List.iter
      (fun observer ->
        let pairs = Check.Gen.secret_pairs ~n ~seed ~steps:35 ~observer layout in
        check_reports ~failures
          [
            Security.Noninterference.check_integrity ~observer ~states ~actions;
            Security.Noninterference.check_local_consistency ~observer ~pairs ~actions;
            Security.Noninterference.check_inactive_consistency ~observer ~pairs ~actions;
          ])
      observers;

    phase_header "7. trace noninterference (Theorem 5.1)";
    let schedules = Check.Gen.schedules ~n:(if quick then 5 else 12) ~len:15 ~seed layout in
    List.iter
      (fun observer ->
        let pairs =
          Check.Gen.secret_pairs ~n:(if quick then 5 else 12) ~seed:(seed + 1)
            ~steps:35 ~observer layout
        in
        check_reports ~failures
          [ Security.Noninterference.check_trace ~observer ~pairs ~schedules ])
      observers;

    phase_header "8. attack scenarios (Fig. 5 + Sec. 4.1 shallow copy)";
    List.iter
      (fun scenario ->
        match Security.Attacks.run scenario with
        | Ok () ->
            Format.printf "  %-22s %s@." scenario.Security.Attacks.name
              (match scenario.Security.Attacks.expected_violation with
              | None -> "passes all invariants (as expected)"
              | Some inv -> "REJECTED by " ^ inv ^ " (as expected)")
        | Error msg ->
            incr failures;
            Format.printf "  %-22s UNEXPECTED: %s@." scenario.Security.Attacks.name msg)
      Security.Attacks.all
  end;

  if chaos then begin
    phase_header "9. chaos (fault injection, transactionality, shrinking)";
    if geometry = "x86_64" then
      Format.printf
        "  skipped: the chaos checks enumerate page contents; use --geometry tiny@."
    else
      run_chaos ~failures ~quick ~seed ~traces:chaos_traces ~faults_spec
        ~buggy_tlb layout
  end;

  Format.printf "@.%s@."
    (if !failures = 0 then "VERIFICATION PASS: all checks succeeded"
     else Printf.sprintf "VERIFICATION FAILED: %d phase(s) reported failures" !failures);
  if !failures = 0 then 0 else 1

let geometry =
  Arg.(value & opt string "tiny" & info [ "geometry" ] ~docv:"GEOM" ~doc:"tiny or x86_64.")

let seed = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller state budgets.")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:"Also run the fault-injection chaos phase (see lib/fault).")

let chaos_traces =
  Arg.(
    value & opt int 10_000
    & info [ "chaos-traces" ] ~docv:"N"
        ~doc:"Randomized traces the chaos phase replays (--quick caps at 1000).")

let faults =
  Arg.(
    value & opt string "all"
    & info [ "faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated fault kinds to inject: exhaustion, pt-bitflip, \
           bitmap-bitflip, epcm, oracle, tlb, truncation — or 'all'.")

let buggy_tlb =
  Arg.(
    value & flag
    & info [ "buggy-tlb" ]
        ~doc:
          "Chaos the deliberately buggy monitor that skips the TLB flush on \
           unmap; the phase then passes only if the stale-TLB bug is found \
           and shrunk to a minimal witness.")

let cmd =
  Cmd.v
    (Cmd.info "hyperenclave-verify"
       ~doc:"Run the full HyperEnclave memory-subsystem verification pass")
    Term.(const run $ geometry $ seed $ quick $ chaos $ chaos_traces $ faults $ buggy_tlb)

let () = exit (Cmd.eval' cmd)

(* hyperenclave-verify: run the full verification pass.

   Phases, mirroring the paper's structure:
     1. mirlightgen  — compile the memory module to MIRlight
     2. layering     — assemble the 15-layer stack, check stratification
     3. analysis     — MIRlight dataflow lints (lib/analysis), selected
                       with --lints
     4. code-proofs  — per-function conformance (Sec. 4.3)
     5. refinement   — flat/tree page-table simulation (Sec. 4.1)
     6. invariants   — Sec. 5.2 invariants on reachable states
     7. noninterference — Lemmas 5.2-5.4 (Sec. 5.3)
     8. trace noninterference — Theorem 5.1
     9. attacks      — Fig. 5 scenarios must be rejected
    10. chaos        — opt-in (--chaos): fault-injected traces with
                       transactionality, invariant and TLB-consistency
                       checks, plus MIRlight-level primitive faults
    11. model check  — opt-in (--model-check DEPTH): exhaustive bounded
                       exploration of every event interleaving (lib/mc),
                       sharded by state-key prefix across the pool, with
                       partial-order reduction (--mc-por/--no-mc-por)

   Phases 3-9 and 11 are reified as an obligation DAG (lib/engine) and run on
   a Domain worker pool (--jobs), optionally against a
   content-addressed proof cache (--cache DIR).  Stdout carries only
   verification content — no job counts, timings or cache statistics —
   so the output is byte-identical at any job count and cache state;
   scheduling metadata goes to stderr, --json-out and --trace-out. *)

open Cmdliner
module Report = Mirverif.Report

let phase_header name = Format.printf "@.=== %s ===@." name

let check_reports ~failures reports =
  List.iter
    (fun r ->
      Format.printf "  %s@." (Report.to_string r);
      if not (Report.ok r) then incr failures)
    reports

(* Phase 9 (opt-in): chaos.  On the correct monitor the phase passes
   when [traces] fault-injected traces survive every per-step check; on
   the --buggy-tlb monitor it passes when the planted stale-TLB bug is
   found and shrunk to a minimal witness.  Stays sequential: its value
   is the shrinking loop, not throughput. *)
let run_chaos ~failures ~quick ~seed ~traces ~faults_spec ~buggy_tlb layout =
  let kinds =
    if String.trim faults_spec = "all" then Ok Fault.Plan.all_kinds
    else Fault.Plan.kinds_of_string faults_spec
  in
  match kinds with
  | Error msg ->
      incr failures;
      Format.printf "  bad --faults: %s@." msg
  | Ok [] ->
      incr failures;
      Format.printf "  bad --faults: empty kind list@."
  | Ok kinds ->
      let traces = if quick then min traces 1_000 else traces in
      let flush = not buggy_tlb in
      Format.printf "  monitor: %s@.  fault kinds: %s@."
        (if buggy_tlb then "buggy (unmap does not flush the TLB)" else "correct")
        (String.concat ", " (List.map Fault.Plan.kind_to_string kinds));
      let stats, cx = Fault.Chaos.run ~flush ~faults:kinds ~seed ~traces layout in
      Format.printf
        "  %d traces, %d events, %d faults applied (%d inapplicable), %d disabled actions@."
        stats.Fault.Chaos.traces stats.Fault.Chaos.events stats.Fault.Chaos.faults
        stats.Fault.Chaos.fault_skips stats.Fault.Chaos.disabled_steps;
      (match (cx, buggy_tlb) with
      | None, false ->
          Format.printf
            "  no violations: transactionality, invariants and TLB consistency hold@."
      | Some cx, false ->
          incr failures;
          Format.printf "  COUNTEREXAMPLE:@.%a@." Fault.Chaos.pp_counterexample cx
      | Some cx, true ->
          Format.printf "  found and shrunk the planted stale-TLB bug:@.%a@."
            Fault.Chaos.pp_counterexample cx;
          if not (String.equal cx.Fault.Chaos.cx_failure.Fault.Chaos.check "tlb-consistency")
          then begin
            incr failures;
            Format.printf "  UNEXPECTED: the failure is not a TLB-consistency violation@."
          end
      | None, true ->
          incr failures;
          Format.printf "  UNEXPECTED: the buggy monitor survived all %d traces@."
            stats.Fault.Chaos.traces);
      let mreport, outcomes = Fault.Mir_chaos.run ~seed layout in
      Format.printf "  %s@." (Report.to_string mreport);
      List.iter
        (fun o ->
          Format.printf "    %-16s %3d primitive calls, %3d perturbed executions@."
            o.Fault.Mir_chaos.target o.Fault.Mir_chaos.prim_calls
            o.Fault.Mir_chaos.injections)
        outcomes;
      if not (Report.ok mreport) then incr failures

(* ------------------------------------------------------------------ *)
(* Engine result rendering                                             *)

let of_phase execs phase =
  List.filter
    (fun (e : Engine.Pool.exec) -> String.equal e.obligation.Engine.Obligation.phase phase)
    execs

let reports_of execs =
  List.concat_map
    (fun (e : Engine.Pool.exec) -> e.outcome.Engine.Obligation.reports)
    execs

let findings_of execs =
  List.concat_map
    (fun (e : Engine.Pool.exec) -> e.outcome.Engine.Obligation.findings)
    execs

(* All lint findings of the run — per-body dataflow plus per-SCC
   abstract interpretation — with the discharge certificates applied:
   an [Info] certificate cancels the [Error] twin at the same site of
   the same function. *)
let lint_findings execs =
  let module M = Map.Make (String) in
  let by_fn =
    List.fold_left
      (fun m (fn, f) ->
        M.update fn (fun l -> Some (f :: Option.value ~default:[] l)) m)
      M.empty
      (findings_of (of_phase execs "analysis")
      @ findings_of (of_phase execs "absint")
      @ findings_of (of_phase execs "borrow")
      @ findings_of (of_phase execs "alias"))
  in
  M.bindings by_fn
  |> List.concat_map (fun (fn, fs) ->
         List.map
           (fun f -> (fn, f))
           (Analysis.Lint.reconcile (Analysis.Lint.sort (List.rev fs))))

let is_error (f : Analysis.Lint.finding) =
  f.Analysis.Lint.severity = Analysis.Lint.Error

let is_discharge (f : Analysis.Lint.finding) =
  f.Analysis.Lint.severity = Analysis.Lint.Info
  && f.Analysis.Lint.discharged_by <> None

let severity_to_string = function
  | Analysis.Lint.Error -> "error"
  | Analysis.Lint.Info -> "info"

(* Numeric program-point key: [where] strings are "bbN[M]" /
   "bbN[term]" / "bbN", and a plain string compare puts bb10 before
   bb2.  Parsing the block/statement indices makes the JSON order
   positional and byte-stable across --jobs and scheduler timing. *)
let where_key w =
  match Scanf.sscanf_opt w "bb%d[%d]" (fun b s -> (b, s)) with
  | Some k -> k
  | None -> (
      match Scanf.sscanf_opt w "bb%d[term" (fun b -> (b, max_int)) with
      | Some k -> k
      | None -> (
          match Scanf.sscanf_opt w "bb%d" (fun b -> (b, -1)) with
          | Some k -> k
          | None -> (max_int, max_int)))

let lint_json_of findings =
  let sorted =
    List.sort
      (fun (fn1, (a : Analysis.Lint.finding)) (fn2, (b : Analysis.Lint.finding)) ->
        let c = String.compare fn1 fn2 in
        if c <> 0 then c
        else
          let c = compare (where_key a.Analysis.Lint.where) (where_key b.Analysis.Lint.where) in
          if c <> 0 then c
          else
            let c =
              String.compare
                (Analysis.Lint.to_string a.Analysis.Lint.kind)
                (Analysis.Lint.to_string b.Analysis.Lint.kind)
            in
            if c <> 0 then c
            else
              let c = String.compare a.Analysis.Lint.where b.Analysis.Lint.where in
              if c <> 0 then c
              else String.compare a.Analysis.Lint.detail b.Analysis.Lint.detail)
      findings
  in
  Engine.Jsonx.List
    (List.map
       (fun (fn, (f : Analysis.Lint.finding)) ->
         Engine.Jsonx.Obj
           [
             ("function", Engine.Jsonx.Str fn);
             ("kind", Str (Analysis.Lint.to_string f.Analysis.Lint.kind));
             ("where", Str f.Analysis.Lint.where);
             ("severity", Str (severity_to_string f.Analysis.Lint.severity));
             ( "discharged_by",
               match f.Analysis.Lint.discharged_by with
               | Some d -> Str d
               | None -> Null );
             ("detail", Str f.Analysis.Lint.detail);
           ])
       sorted)

let layer_of_code_proof_id id =
  match String.split_on_char '/' id with _ :: layer :: _ -> layer | _ -> "?"

(* Print the per-phase sections exactly as the sequential pass did,
   from the execs (which arrive in DAG insertion order, independent of
   scheduling). *)
let render_engine_results ~failures ~security execs =
  phase_header "3. static analysis (MIRlight dataflow lints)";
  let an = of_phase execs "analysis" in
  let findings = lint_findings execs in
  let body_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.all)
      findings
  in
  let at, ap, _, _ =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) an)
  in
  Format.printf "  %d functions, %d lint checks: %d passed, %d findings@."
    (List.length an) at ap (List.length body_errors);
  (* a per-body failure without a finding is an engine-level problem
     (e.g. a layer listing a function with no MIRlight body) *)
  List.iter
    (fun (e : Engine.Pool.exec) ->
      if e.outcome.Engine.Obligation.findings = [] then
        List.iter
          (fun r ->
            if not (Report.ok r) then begin
              incr failures;
              Format.printf "  FAIL [%s] %s@."
                (layer_of_code_proof_id e.obligation.Engine.Obligation.id)
                (Report.to_string r)
            end)
          e.outcome.Engine.Obligation.reports)
    an;
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.printf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    body_errors;

  phase_header "3b. abstract interpretation (interval bounds + secret flow)";
  let ab = of_phase execs "absint" in
  let absint_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.interprocedural)
      findings
  in
  let count kind =
    List.length
      (List.filter
         (fun (_, (f : Analysis.Lint.finding)) -> f.Analysis.Lint.kind = kind)
         absint_errors)
  in
  Format.printf
    "  %d SCC obligations: %d secret-flow findings, %d interval findings, %d \
     arith sites discharged@."
    (List.length ab)
    (count Analysis.Lint.Secret_flow)
    (count Analysis.Lint.Interval_bounds)
    (List.length
       (List.filter
          (fun (_, (f : Analysis.Lint.finding)) ->
            is_discharge f
            && f.Analysis.Lint.discharged_by
               = Some (Analysis.Lint.to_string Analysis.Lint.Interval_bounds))
          findings));
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.printf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    absint_errors;

  phase_header "3c. borrow checking (NLL liveness regions + loan dataflow)";
  let bw = of_phase execs "borrow" in
  let borrow_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.borrow)
      findings
  in
  let bt, bp, _, _ =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) bw)
  in
  Format.printf "  %d functions, %d borrow checks: %d passed, %d findings@."
    (List.length bw) bt bp (List.length borrow_errors);
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.printf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    borrow_errors;

  phase_header "3d. alias analysis (Andersen points-to footprints)";
  let al = of_phase execs "alias" in
  let alias_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.alias)
      findings
  in
  Format.printf "  %d SCC obligations: %d alias findings, %d warnings discharged@."
    (List.length al)
    (List.length alias_errors)
    (List.length
       (List.filter
          (fun (_, (f : Analysis.Lint.finding)) ->
            f.Analysis.Lint.discharged_by
            = Some (Analysis.Lint.to_string Analysis.Lint.Alias_footprint))
          findings));
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.printf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    alias_errors;

  phase_header "4. code proofs (code conforms to low specs)";
  let cp = of_phase execs "code-proofs" in
  let t, p, s, f =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) cp)
  in
  Format.printf "  %d functions, %d cases: %d passed, %d skipped, %d failed@."
    (List.length cp) t p s f;
  List.iter
    (fun (e : Engine.Pool.exec) ->
      List.iter
        (fun r ->
          if not (Report.ok r) then begin
            incr failures;
            Format.printf "  FAIL [%s] %s@."
              (layer_of_code_proof_id e.obligation.Engine.Obligation.id)
              (Report.to_string r)
          end)
        e.outcome.Engine.Obligation.reports)
    cp;

  phase_header "5. page-table refinement (flat <-> tree, Sec. 4.1)";
  check_reports ~failures (Report.merge_by_name (reports_of (of_phase execs "refinement")));

  if security then begin
    phase_header "6. invariants (Sec. 5.2) on reachable states";
    check_reports ~failures
      (Report.merge_by_name (reports_of (of_phase execs "invariants")));

    phase_header "7. noninterference (Lemmas 5.2-5.4, Sec. 5.3)";
    check_reports ~failures (reports_of (of_phase execs "noninterference"));

    phase_header "8. trace noninterference (Theorem 5.1)";
    check_reports ~failures (reports_of (of_phase execs "trace-ni"));

    phase_header "9. attack scenarios (Fig. 5 + Sec. 4.1 shallow copy)";
    List.iter
      (fun (e : Engine.Pool.exec) ->
        Format.printf "  %s@." e.outcome.Engine.Obligation.log;
        if Engine.Obligation.failure_count e.outcome > 0 then incr failures)
      (of_phase execs "attacks")
  end

(* ------------------------------------------------------------------ *)
(* Phase 11 (opt-in): bounded model checking                           *)

(* Execs arrive in DAG insertion order (root, then shards in index
   order), so the folded rollup — and with it every stdout line — is
   byte-identical at any job count and cache state. *)
let mc_rollup execs =
  Mc.Explore.rollup
    (List.map
       (fun (e : Engine.Pool.exec) ->
         Mc.Explore.parse_log e.outcome.Engine.Obligation.log)
       (of_phase execs "model-check"))

let render_model_check ~failures (req : Engine.Plan.mc_request) execs =
  phase_header "11. model checking (exhaustive bounded interleavings)";
  let r = mc_rollup execs in
  Format.printf "  monitor: %s@."
    (if req.Engine.Plan.mc_flush then "correct"
     else "buggy (unmap does not flush the TLB)");
  Format.printf
    "  depth %d, %d-event universe, reduction %s: %d states, %d transitions, \
     %d deduped, %d pruned@."
    req.Engine.Plan.mc_depth
    (List.length (Mc.Universe.events req.Engine.Plan.mc_layout))
    (if req.Engine.Plan.mc_por then "on" else "off")
    r.Mc.Explore.r_states r.Mc.Explore.r_transitions r.Mc.Explore.r_deduped
    r.Mc.Explore.r_pruned;
  List.iter
    (fun (v : Mc.Explore.parsed_violation) ->
      Format.printf "  VIOLATION %s at state %s: %s@." v.Mc.Explore.p_kind
        v.Mc.Explore.p_state v.Mc.Explore.p_detail;
      Format.printf "    witness (%d events, ddmin spent %d replays):@."
        (List.length v.Mc.Explore.p_witness)
        v.Mc.Explore.p_evals;
      List.iter (Format.printf "      %s@.") v.Mc.Explore.p_witness)
    r.Mc.Explore.r_violations;
  match (r.Mc.Explore.r_violations, req.Engine.Plan.mc_flush) with
  | [], true ->
      Format.printf
        "  no violations: every reachable state satisfies the invariants, TLB \
         consistency and step-indistinguishability@."
  | [], false ->
      incr failures;
      Format.printf
        "  UNEXPECTED: the buggy monitor survived exhaustive exploration@."
  | vs, flush ->
      if flush then incr failures
      else if
        List.for_all
          (fun (v : Mc.Explore.parsed_violation) ->
            String.equal v.Mc.Explore.p_kind "tlb-consistency")
          vs
      then
        Format.printf
          "  rediscovered the planted stale-TLB bug exhaustively (minimal \
           witness: %d events)@."
          (Option.value ~default:0 (Mc.Explore.min_witness r))
      else begin
        incr failures;
        Format.printf
          "  UNEXPECTED: violations beyond the planted TLB-consistency bug@."
      end

let model_check_json model_check execs =
  match model_check with
  | None -> Engine.Jsonx.Null
  | Some (req : Engine.Plan.mc_request) ->
      let r = mc_rollup execs in
      Engine.Jsonx.Obj
        [
          ("depth", Engine.Jsonx.Int req.Engine.Plan.mc_depth);
          ("por", Str (if req.Engine.Plan.mc_por then "on" else "off"));
          ( "monitor",
            Str (if req.Engine.Plan.mc_flush then "correct" else "buggy-tlb") );
          ( "universe",
            Int (List.length (Mc.Universe.events req.Engine.Plan.mc_layout)) );
          ("states_explored", Int r.Mc.Explore.r_states);
          ("transitions", Int r.Mc.Explore.r_transitions);
          ("deduped", Int r.Mc.Explore.r_deduped);
          ("pruned", Int r.Mc.Explore.r_pruned);
          ( "min_witness",
            match Mc.Explore.min_witness r with Some n -> Int n | None -> Null );
          ( "violations",
            List
              (List.map
                 (fun (v : Mc.Explore.parsed_violation) ->
                   Engine.Jsonx.Obj
                     [
                       ("kind", Engine.Jsonx.Str v.Mc.Explore.p_kind);
                       ("state", Str v.Mc.Explore.p_state);
                       ("detail", Str v.Mc.Explore.p_detail);
                       ("shrink_evals", Int v.Mc.Explore.p_evals);
                       ( "witness",
                         List
                           (List.map
                              (fun ev -> Engine.Jsonx.Str ev)
                              v.Mc.Explore.p_witness) );
                     ])
                 r.Mc.Explore.r_violations) );
        ]

(* ------------------------------------------------------------------ *)
(* Observability: stderr one-liner, --json-out summary, --trace-out    *)

let count_cache execs status =
  List.length (List.filter (fun (e : Engine.Pool.exec) -> e.cache = status) execs)

let phase_summary execs phase =
  let es = of_phase execs phase in
  let executed = List.length es - count_cache es Engine.Pool.Hit in
  let wall =
    List.fold_left
      (fun acc (e : Engine.Pool.exec) -> acc +. (e.finished -. e.started))
      0.0 es
  in
  Engine.Jsonx.Obj
    [
      ("phase", Str phase);
      ("obligations", Int (List.length es));
      ("executed", Int executed);
      ("cache_hits", Int (count_cache es Engine.Pool.Hit));
      ("wall_s", Float wall);
    ]

let supervision_json (totals : Engine.Supervisor.totals)
    (stats : Engine.Pool.stats) =
  Engine.Jsonx.Obj
    [
      ("supervised", Engine.Jsonx.Int totals.Engine.Supervisor.supervised);
      ("retried", Int totals.Engine.Supervisor.retried);
      ("recovered", Int totals.Engine.Supervisor.recovered);
      ("fell_back", Int totals.Engine.Supervisor.fell_back);
      ("quarantined", Int totals.Engine.Supervisor.quarantined);
      ("timeouts", Int totals.Engine.Supervisor.timeouts);
      ("crashes", Int totals.Engine.Supervisor.crashes);
      ("worker_respawns", Int stats.Engine.Pool.respawns);
      ("workers_lost", Int stats.Engine.Pool.lost_workers);
    ]

let engine_chaos_json = function
  | None -> Engine.Jsonx.Null
  | Some ch ->
      Engine.Jsonx.Obj
        (("seed", Engine.Jsonx.Int (Engine.Engine_chaos.seed ch))
         :: ("injected_total", Int (Engine.Engine_chaos.injected_total ch))
         :: List.map
              (fun (k, n) ->
                (Fault.Plan.engine_kind_to_string k, Engine.Jsonx.Int n))
              (Engine.Engine_chaos.injected ch))

let overrides_json (plan : Engine.Plan.t) =
  Engine.Jsonx.Obj
    [
      ("enabled", Engine.Jsonx.Bool plan.Engine.Plan.overrides);
      ( "stubbed_calls_total",
        Int
          (List.fold_left
             (fun n (_, c) -> n + c)
             0 plan.Engine.Plan.override_counts) );
      ( "per_function",
        List
          (List.map
             (fun (fn, c) ->
               Engine.Jsonx.Obj [ ("fn", Engine.Jsonx.Str fn); ("stubs", Int c) ])
             plan.Engine.Plan.override_counts) );
    ]

let summary_json ~failures ~jobs ~cache_enabled ~sup_totals ~stats
    ~cache_write_failures ~engine_chaos ~model_check ~plan execs =
  let hits = count_cache execs Engine.Pool.Hit in
  let misses = count_cache execs Engine.Pool.Miss in
  let t, p, s, f =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) execs)
  in
  Engine.Jsonx.Obj
    [
      ("verdict", Str (if failures = 0 then "pass" else "fail"));
      ("failures", Int failures);
      ("jobs", Int jobs);
      ("obligations", Int (List.length execs));
      ("executed", Int (List.length execs - hits));
      ("cache_hits", Int hits);
      ("cache_misses", Int misses);
      ("cache", Str (if cache_enabled then "enabled" else "disabled"));
      ("cache_write_failures", Int cache_write_failures);
      ("supervision", supervision_json sup_totals stats);
      ("engine_chaos", engine_chaos_json engine_chaos);
      ("model_check", model_check_json model_check execs);
      ("overrides", overrides_json plan);
      ("elapsed_s", Float (Engine.Pool.wall_of execs));
      ( "report_totals",
        Obj [ ("cases", Int t); ("passed", Int p); ("skipped", Int s); ("failed", Int f) ]
      );
      (* every phase, zero-obligation ones included: a jq gate keyed on
         a phase must find its counts (as zeros), never a missing entry
         that lets the gate vacuously pass *)
      ("phases", List (List.map (phase_summary execs) Engine.Plan.phases));
      ( "workers",
        List
          (List.map
             (fun (w, busy, n) ->
               Engine.Jsonx.Obj
                 [ ("worker", Int w); ("busy_s", Float busy); ("obligations", Int n) ])
             (Engine.Pool.worker_stats execs)) );
    ]

(* Supervision detail appears in an obligation's trace line only when
   something happened (retries, faults, a fallback, quarantine): clean
   runs keep the historical line shape. *)
let trail_fields (trail : Engine.Supervisor.trail) =
  if not (Engine.Supervisor.eventful trail) then []
  else
    [
      ( "resolution",
        Engine.Jsonx.Str
          (Engine.Supervisor.resolution_to_string trail.Engine.Supervisor.resolution) );
      ( "attempts",
        Engine.Jsonx.List
          (List.map
             (fun (a : Engine.Supervisor.attempt) ->
               Engine.Jsonx.Obj
                 [
                   ("n", Engine.Jsonx.Int a.Engine.Supervisor.n);
                   ("status", Str (Engine.Supervisor.status_to_string a.Engine.Supervisor.status));
                   ( "injected",
                     match a.Engine.Supervisor.injected with
                     | Some k -> Str (Fault.Plan.engine_kind_to_string k)
                     | None -> Null );
                   ("backoff_s", Float a.Engine.Supervisor.backoff);
                 ])
             trail.Engine.Supervisor.attempts) );
    ]

let trace_json ~cache execs =
  let exec_lines =
    List.map
      (fun (e : Engine.Pool.exec) ->
        Engine.Jsonx.Obj
          ([
             ("id", Engine.Jsonx.Str e.obligation.Engine.Obligation.id);
             ("phase", Str e.obligation.Engine.Obligation.phase);
             ("cache", Str (Engine.Pool.cache_status_to_string e.cache));
             ("worker", Int e.worker);
             ("started_s", Float e.started);
             ("finished_s", Float e.finished);
             ("duration_s", Float (e.finished -. e.started));
             ("failures", Int (Engine.Obligation.failure_count e.outcome));
           ]
          @ trail_fields e.trail))
      execs
  in
  let failure_lines =
    match cache with
    | None -> []
    | Some c ->
        List.map
          (fun (op, msg) ->
            Engine.Jsonx.Obj
              [
                ("event", Engine.Jsonx.Str "cache-write-failure");
                ("op", Str op);
                ("error", Str msg);
              ])
          (Engine.Cache.write_failures c)
  in
  exec_lines @ failure_lines

(* ------------------------------------------------------------------ *)

let run geometry seed quick jobs cache_dir json_out trace_out lint_json chaos
    chaos_traces faults_spec buggy_tlb lints timeout_ms retries
    engine_chaos_seed engine_faults_spec mc_depth mc_geometry mc_por overrides =
  match
    if engine_chaos_seed = None then Ok Fault.Plan.all_engine_kinds
    else Fault.Plan.engine_kinds_of_string engine_faults_spec
  with
  | Error msg ->
      Format.eprintf "hyperenclave-verify: bad --engine-faults: %s@." msg;
      2
  | Ok [] ->
      Format.eprintf "hyperenclave-verify: bad --engine-faults: empty kind list@.";
      2
  | Ok engine_kinds ->
  let geom =
    match geometry with
    | "x86_64" -> Hyperenclave.Geometry.x86_64
    | _ -> Hyperenclave.Geometry.tiny
  in
  let layout = Hyperenclave.Layout.default geom in
  let failures = ref 0 in

  phase_header "1. mirlightgen (Rustlite -> MIRlight)";
  let out = Hyperenclave.Layers.compiled layout in
  Format.printf "  functions: %d, source lines: %d, mirlight lines: %d@."
    (List.length out.Rustlite.Pipeline.function_names)
    out.Rustlite.Pipeline.source_lines out.Rustlite.Pipeline.mir_lines;

  phase_header "2. layer stack";
  let issues = Hyperenclave.Layers.stratification_ok layout in
  Format.printf "  %d layers, stratification issues: %d@."
    Hyperenclave.Layers.layer_count (List.length issues);
  List.iter (fun i -> Format.printf "  %a@." Mirverif.Layer.pp_stratification_issue i) issues;
  if issues <> [] then incr failures;

  (* phases 3-8: build the obligation DAG and hand it to the pool *)
  let security = geometry <> "x86_64" in
  let model_check =
    Option.map
      (fun depth ->
        (* the checker's own small geometry: exhaustive exploration
           needs an enumerable state space regardless of the geometry
           the proof phases run on *)
        let mc_geom =
          match mc_geometry with
          | "tiny3" -> (
              match
                Hyperenclave.Geometry.make ~levels:3 ~index_bits:2 ~fb_present:0
                  ~fb_write:1 ~fb_user:2 ~fb_huge:3
              with
              | Ok g -> g
              | Error _ -> Hyperenclave.Geometry.tiny)
          | _ -> Hyperenclave.Geometry.tiny
        in
        {
          Engine.Plan.mc_depth = max 1 depth;
          mc_por;
          mc_flush = not buggy_tlb;
          mc_layout = Hyperenclave.Layout.default mc_geom;
        })
      mc_depth
  in
  let plan =
    Engine.Plan.build ~quick ~security ~lints ?model_check ~overrides ~seed
      layout
  in
  let cache = Option.map (fun dir -> Engine.Cache.create ~dir) cache_dir in
  let jobs = max 1 jobs in
  let engine_chaos =
    Option.map
      (fun cseed -> Engine.Engine_chaos.create ~kinds:engine_kinds ~seed:cseed ())
      engine_chaos_seed
  in
  let sup =
    {
      Engine.Supervisor.default with
      timeout = (if timeout_ms <= 0 then None else Some (float_of_int timeout_ms /. 1000.));
      retries = max 0 retries;
      seed;
      chaos = engine_chaos;
    }
  in
  let run_pool () = Engine.Pool.run_with_stats ?cache ~sup ~jobs plan.Engine.Plan.dag in
  let execs, stats =
    (* chaos clock skew perturbs every engine timestamp and deadline
       read; verification content never reads the clock, so stdout is
       untouched *)
    match engine_chaos with
    | Some ch -> Engine.Clock.with_source (Engine.Engine_chaos.skewed_source ch) run_pool
    | None -> run_pool ()
  in
  render_engine_results ~failures ~security execs;

  if chaos then begin
    phase_header "10. chaos (fault injection, transactionality, shrinking)";
    if geometry = "x86_64" then
      Format.printf
        "  skipped: the chaos checks enumerate page contents; use --geometry tiny@."
    else
      run_chaos ~failures ~quick ~seed ~traces:chaos_traces ~faults_spec
        ~buggy_tlb layout
  end;

  Option.iter (fun req -> render_model_check ~failures req execs) model_check;

  Format.printf "@.%s@."
    (if !failures = 0 then "VERIFICATION PASS: all checks succeeded"
     else Printf.sprintf "VERIFICATION FAILED: %d phase(s) reported failures" !failures);

  (* scheduling metadata: never on stdout, so runs diff clean *)
  Format.eprintf "engine: %d obligations, jobs=%d, cache %s, %d hits, %d misses, %.3fs@."
    (List.length execs) jobs
    (if cache = None then "off" else "on")
    (count_cache execs Engine.Pool.Hit)
    (count_cache execs Engine.Pool.Miss)
    (Engine.Pool.wall_of execs);
  let sup_totals =
    Engine.Supervisor.totals (List.map (fun (e : Engine.Pool.exec) -> e.trail) execs)
  in
  let cache_write_failures =
    match cache with None -> 0 | Some c -> Engine.Cache.write_failure_count c
  in
  if
    sup_totals.Engine.Supervisor.supervised > 0
    || stats.Engine.Pool.respawns > 0 || stats.Engine.Pool.lost_workers > 0
  then
    Format.eprintf
      "engine supervision: %d supervised (%d retried, %d recovered, %d fell back, \
       %d quarantined), %d crashes, %d timeouts, %d respawns, %d workers lost@."
      sup_totals.Engine.Supervisor.supervised sup_totals.Engine.Supervisor.retried
      sup_totals.Engine.Supervisor.recovered sup_totals.Engine.Supervisor.fell_back
      sup_totals.Engine.Supervisor.quarantined sup_totals.Engine.Supervisor.crashes
      sup_totals.Engine.Supervisor.timeouts stats.Engine.Pool.respawns
      stats.Engine.Pool.lost_workers;
  if cache_write_failures > 0 then
    Format.eprintf "engine cache: %d write failure(s) — see --trace-out@."
      cache_write_failures;
  Option.iter
    (fun ch ->
      Format.eprintf "engine chaos: seed=%d, injected %d (%s)@."
        (Engine.Engine_chaos.seed ch)
        (Engine.Engine_chaos.injected_total ch)
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" (Fault.Plan.engine_kind_to_string k) n)
              (Engine.Engine_chaos.injected ch))))
    engine_chaos;
  Option.iter
    (fun path ->
      Engine.Jsonx.write_file path
        (Engine.Jsonx.to_multiline_string
           (summary_json ~failures:!failures ~jobs ~cache_enabled:(cache <> None)
              ~sup_totals ~stats ~cache_write_failures ~engine_chaos ~model_check
              ~plan execs)))
    json_out;
  Option.iter (fun path -> Engine.Jsonx.write_lines path (trace_json ~cache execs)) trace_out;
  Option.iter
    (fun path ->
      Engine.Jsonx.write_file path
        (Engine.Jsonx.to_multiline_string (lint_json_of (lint_findings execs))))
    lint_json;
  if !failures = 0 then 0 else 1

let geometry =
  Arg.(
    value
    & opt (enum [ ("tiny", "tiny"); ("x86_64", "x86_64") ]) "tiny"
    & info [ "geometry" ] ~docv:"GEOM" ~doc:"Page-table geometry: $(b,tiny) or $(b,x86_64).")

let seed = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller state budgets.")

let jobs =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the obligation pool (default: the recommended \
           domain count).  Results are byte-identical at any N.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed proof cache directory.  Warm runs replay unchanged \
           obligations from the cache instead of re-executing them.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:"Write a machine-readable run summary (verdict, cache and worker stats).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a JSONL trace: one line per obligation with timing and cache status.")

let lint_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "lint-json" ] ~docv:"FILE"
        ~doc:
          "Write the reconciled lint findings (per-body dataflow plus \
           abstract-interpretation kinds) as a JSON list: kind, function, \
           program point, severity, discharged-by.")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:"Also run the fault-injection chaos phase (see lib/fault).")

let chaos_traces =
  Arg.(
    value & opt int 10_000
    & info [ "chaos-traces" ] ~docv:"N"
        ~doc:"Randomized traces the chaos phase replays (--quick caps at 1000).")

let faults =
  Arg.(
    value & opt string "all"
    & info [ "faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated fault kinds to inject: exhaustion, pt-bitflip, \
           bitmap-bitflip, epcm, oracle, tlb, truncation — or 'all'.")

let buggy_tlb =
  Arg.(
    value & flag
    & info [ "buggy-tlb" ]
        ~doc:
          "Chaos the deliberately buggy monitor that skips the TLB flush on \
           unmap; the phase then passes only if the stale-TLB bug is found \
           and shrunk to a minimal witness.")

let lints =
  (* parse-time validation, like --geometry's enum: an unknown lint
     name or group selector is a usage error before any phase runs,
     not a silently-empty selection *)
  let lints_conv =
    Arg.conv
      ( (fun s ->
          match Analysis.Lint.kinds_of_string s with
          | Ok ks -> Ok ks
          | Error msg -> Error (`Msg msg)),
        fun fmt ks ->
          Format.pp_print_string fmt
            (String.concat "," (List.map Analysis.Lint.to_string ks)) )
  in
  Arg.(
    value
    & opt lints_conv Analysis.Lint.catalogue
    & info [ "lints" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated static-analysis lints to run: layer-encapsulation, \
           move-init, unchecked-arith, unreachable-block, conflicting-borrow, \
           dangling-handle, move-while-borrowed, interval-bounds, secret-flow, \
           alias-footprint — or a group selector: $(b,all), $(b,body), \
           $(b,borrow), $(b,interprocedural), $(b,alias).")

let timeout_ms =
  Arg.(
    value & opt int 0
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-attempt obligation deadline in milliseconds (0 = none).  \
           Cooperative: check batteries poll at case/trial boundaries, so an \
           attempt is cancelled at the first boundary past the deadline.")

let retries =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Additional attempts for an obligation that crashes or times out, \
           with deterministic exponential backoff, before the degradation \
           ladder (reference-interpreter fallback for code proofs) and \
           quarantine.")

let engine_chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "engine-chaos" ] ~docv:"SEED"
        ~doc:
          "Inject deterministic faults into the verification engine itself \
           (obligation crashes/hangs, worker kills, cache corruption, clock \
           skew) from SEED.  Verdicts must be byte-identical to a clean run \
           — CI asserts this.")

let engine_faults =
  Arg.(
    value & opt string "all"
    & info [ "engine-faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated engine fault kinds for --engine-chaos: obl-crash, \
           obl-hang, worker-kill, torn-pack, truncated-proof, clock-skew — \
           or 'all'.")

let mc_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "model-check" ] ~docv:"DEPTH"
        ~doc:
          "Also run phase 11: exhaustively explore every interleaving of the \
           hypercall/access/fault universe up to DEPTH events from boot on \
           the --mc-geometry layout, deduplicating states by canonical key \
           and checking invariants, TLB consistency, transactionality and \
           step-indistinguishability at every reachable state.  With \
           --buggy-tlb the phase passes only when the stale-TLB bug is \
           rediscovered and ddmin-shrunk to its minimal witness.")

let mc_geometry =
  Arg.(
    value
    & opt (enum [ ("tiny", "tiny"); ("tiny3", "tiny3") ]) "tiny"
    & info [ "mc-geometry" ] ~docv:"GEOM"
        ~doc:
          "Geometry for the model-checking phase: $(b,tiny) (2 levels) or \
           $(b,tiny3) (3 levels) — independent of --geometry, since \
           exhaustive exploration needs an enumerable state space.")

let mc_por =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "mc-por" ]
              ~doc:
                "Enable sleep-set partial-order reduction in the \
                 model-checking phase (the default)." );
          ( false,
            info [ "no-mc-por" ]
              ~doc:
                "Disable partial-order reduction: explore every interleaving \
                 order.  The violation set and reachable states are identical \
                 either way — CI asserts it." );
        ])

let overrides =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "overrides" ]
              ~doc:
                "Compositional code proofs (the default): once a callee is \
                 proven, its callers execute the callee's specification as a \
                 compiled stub instead of its body; dependency edges follow \
                 the call graph and cache fingerprints cover only (own body + \
                 directly-used callee specs).  Verdicts are identical to \
                 --no-overrides — CI asserts it." );
          ( false,
            info [ "no-overrides" ]
              ~doc:
                "Monolithic code proofs: every same-layer callee runs its \
                 body, layer-barrier dependency edges, reachable-closure \
                 fingerprints — the pre-composition engine, byte-for-byte." );
        ])

let cmd =
  Cmd.v
    (Cmd.info "hyperenclave-verify"
       ~doc:"Run the full HyperEnclave memory-subsystem verification pass")
    Term.(
      const run $ geometry $ seed $ quick $ jobs $ cache_dir $ json_out $ trace_out
      $ lint_json $ chaos $ chaos_traces $ faults $ buggy_tlb $ lints $ timeout_ms
      $ retries $ engine_chaos_seed $ engine_faults $ mc_depth $ mc_geometry
      $ mc_por $ overrides)

let () = exit (Cmd.eval' cmd)
